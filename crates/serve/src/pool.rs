//! The worker-pool executor: a fixed set of OS threads serving requests
//! from a shared queue.
//!
//! Query serving is CPU-bound (retrieval + utility math), so a
//! thread-per-core pool over a plain MPMC hand-off — `std::sync::mpsc`
//! with the receiver behind a mutex — saturates the hardware without an
//! async runtime. Workers share the engine through an `Arc`; the engine is
//! immutable after deployment, so there is no cross-request locking outside
//! the result cache's shards.
//!
//! When the retrieval layer is a sharded index backed by a persistent
//! [`ScoringExecutor`](serpdiv_index::ScoringExecutor), the pool's
//! workers act as scatter *submitters*: each request hands its shard
//! tasks to the shared scoring pool (helping drain its own batch while it
//! waits), so total scoring threads stay `pool workers + executor
//! threads` instead of multiplying per query.

use crate::engine::SearchEngine;
use crate::metrics::Degradation;
use crate::request::{QueryRequest, SearchResponse, StageTimings, LABEL_INTERNAL, LABEL_SHED};
use parking_lot::Mutex;
use serpdiv_core::AlgorithmKind;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Admission-control policy of a [`WorkerPool`]: how much queueing the
/// pool tolerates before it starts shedding load.
///
/// An unbounded mpsc convoys under overload — every queued request
/// eventually gets served, seconds late, long after its client gave up.
/// Shedding at admission keeps the latency of the requests that *are*
/// served flat and turns the overflow into cheap, honestly-labeled
/// [`Degradation::Shed`] responses (label
/// [`LABEL_SHED`](crate::request::LABEL_SHED), counted in
/// [`MetricsSnapshot::shed`](crate::MetricsSnapshot::shed), never
/// cached). The default policy is fully permissive, preserving the
/// historical unbounded behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum jobs waiting in the queue before new submissions are shed
    /// at enqueue time, in O(µs) — one atomic load, no engine work, no
    /// syscalls. 0 ⇒ unbounded.
    pub max_queue: usize,
    /// Maximum enqueue→pickup wait before a dequeued job is shed at
    /// pickup instead of served: a request that waited this long is
    /// stale, and serving it would only delay fresher ones behind it.
    /// 0 ⇒ serve no matter how stale.
    pub max_queue_wait_us: u64,
    /// Deadline-aware admission: shed at enqueue when the engine's
    /// per-request budget ([`EngineConfig::deadline_us`]) is smaller
    /// than the pool's EWMA of recent service times *for that request's
    /// algorithm class*. Such a request is statistically doomed to
    /// exhaust its budget mid-pipeline and be served the degraded
    /// baseline anyway — admitting it burns a worker's whole budget
    /// window producing the same answer a free shed reply gives
    /// instantly. No effect when the engine runs without a deadline, or
    /// until a class has at least one sample.
    ///
    /// [`EngineConfig::deadline_us`]: crate::engine::EngineConfig::deadline_us
    pub deadline_aware: bool,
    /// Hedged re-dispatch threshold, in percent of the class's EWMA
    /// service estimate. When > 0, [`WorkerPool::serve_batch`] duplicates
    /// a request still unanswered after `hedge_factor_pct/100 ×`
    /// [`predicted_service_us`](WorkerPool::predicted_service_us) onto
    /// the queue and keeps whichever copy completes first — a straggler
    /// (preempted worker, cold page, injected stall) no longer holds its
    /// batch slot hostage for the whole stall. Bounded: at most one hedge
    /// per request (≤ 2× work in the worst case), only while the queue is
    /// empty (a hedge behind a backlog would just deepen it), and only
    /// for classes with a seeded estimate. Hedge copies bypass admission
    /// shedding — the original already paid it, and a shed duplicate
    /// winning the race would degrade a request that was being served
    /// fine. 0 ⇒ no hedging (the default).
    pub hedge_factor_pct: u64,
}

/// Per-class service-time EWMA (µs), one cell per [`AlgorithmKind`] —
/// the prediction behind [`AdmissionPolicy::deadline_aware`]. A cell
/// holding 0 means "no samples yet" (real samples clamp to ≥ 1 µs):
/// unseeded classes are always admitted, so the first request of a class
/// is the probe that seeds its estimate. Smoothing is `new = (3·old +
/// sample) / 4` — quarter-weight on the newest sample tracks load shifts
/// within a few requests without letting one outlier flip admission.
#[derive(Debug, Default)]
struct ServiceEwma {
    classes: [AtomicU64; 5],
}

impl ServiceEwma {
    fn idx(kind: AlgorithmKind) -> usize {
        match kind {
            AlgorithmKind::Baseline => 0,
            AlgorithmKind::OptSelect => 1,
            AlgorithmKind::IaSelect => 2,
            AlgorithmKind::XQuad => 3,
            AlgorithmKind::Mmr => 4,
        }
    }

    fn observe(&self, kind: AlgorithmKind, us: u64) {
        let cell = &self.classes[Self::idx(kind)];
        let sample = us.max(1);
        let mut old = cell.load(Ordering::Relaxed);
        loop {
            let new = if old == 0 {
                sample
            } else {
                (3 * old + sample) / 4
            };
            match cell.compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(v) => old = v,
            }
        }
    }

    fn predict(&self, kind: AlgorithmKind) -> u64 {
        self.classes[Self::idx(kind)].load(Ordering::Relaxed)
    }
}

/// Minimum service time (µs) after which a worker yields its slice at the
/// request boundary — see the yield comment in the worker loop. Requests
/// below this cost less than the yield syscall itself.
const YIELD_AFTER_US: u64 = 16;

struct Job {
    seq: usize,
    req: QueryRequest,
    /// When the job entered the queue; the dequeuing worker turns it into
    /// the response's `queue_wait_us`.
    enqueued: Instant,
    /// A hedged duplicate of a straggling request: exempt from pickup
    /// shedding, because a shed hedge reply racing ahead of the original
    /// would degrade a request that was being served fine.
    hedge: bool,
    reply: mpsc::Sender<(usize, SearchResponse)>,
}

/// A pool of serving threads over one shared [`SearchEngine`].
pub struct WorkerPool {
    queue: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    engine: Arc<SearchEngine>,
    policy: AdmissionPolicy,
    /// Jobs currently queued (enqueued, not yet picked up) — the value
    /// `max_queue` bounds.
    depth: Arc<AtomicUsize>,
    /// Per-class service-time estimates feeding deadline-aware admission.
    ewma: Arc<ServiceEwma>,
}

impl WorkerPool {
    /// Spawn `workers` serving threads (at least one) with an unbounded
    /// queue (the permissive [`AdmissionPolicy::default`]).
    pub fn new(engine: Arc<SearchEngine>, workers: usize) -> Self {
        Self::with_admission(engine, workers, AdmissionPolicy::default())
    }

    /// Spawn `workers` serving threads governed by `policy`.
    pub fn with_admission(
        engine: Arc<SearchEngine>,
        workers: usize,
        policy: AdmissionPolicy,
    ) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let ewma = Arc::new(ServiceEwma::default());
        let handles = (0..workers)
            .map(|i| {
                let engine = engine.clone();
                let rx = rx.clone();
                let depth = depth.clone();
                let ewma = ewma.clone();
                std::thread::Builder::new()
                    .name(format!("serpdiv-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the dequeue, not the work.
                        let job = match rx.lock().recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed: shut down
                        };
                        depth.fetch_sub(1, Ordering::Relaxed);
                        let served_us = Self::serve_job(&engine, policy, &ewma, job);
                        // Yield at the request boundary. When workers
                        // outnumber cores, a thread that has run long
                        // enough gets preempted *mid-request*, parking a
                        // ~50 µs request behind a full scheduler rotation
                        // (tens of ms — the entire measured p99 tail).
                        // Yielding here re-queues the thread while it
                        // holds no request, so preemption lands between
                        // requests and each timed service section starts
                        // with a fresh slice it comfortably fits into.
                        // Gated on the request actually costing real CPU:
                        // paths cheaper than the yield itself (shed
                        // replies, cache hits, bare passthroughs) barely
                        // widen the preemption window and would pay more
                        // in syscalls than they save in tail.
                        if served_us >= YIELD_AFTER_US {
                            std::thread::yield_now();
                        }
                    })
                    .expect("failed to spawn serving worker")
            })
            .collect();
        WorkerPool {
            queue: Some(tx),
            workers: handles,
            engine,
            policy,
            depth,
            ewma,
        }
    }

    /// Serve one dequeued job on a worker thread: staleness shedding,
    /// panic containment, reply delivery. Returns the request's service
    /// time in microseconds (0 for shed replies) — the worker loop's
    /// yield gate.
    fn serve_job(
        engine: &SearchEngine,
        policy: AdmissionPolicy,
        ewma: &ServiceEwma,
        job: Job,
    ) -> u64 {
        let Job {
            seq,
            req,
            enqueued,
            hedge,
            reply,
        } = job;
        // Enqueue → pickup is the saturation signal the stage timings
        // cannot see (they start after).
        let queue_wait_us = enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        engine.record_queue_wait(queue_wait_us);
        if !hedge && policy.max_queue_wait_us > 0 && queue_wait_us > policy.max_queue_wait_us {
            let timings = StageTimings {
                queue_wait_us,
                total_us: queue_wait_us,
                ..StageTimings::default()
            };
            engine.record_out_of_band(Degradation::Shed, timings);
            let _ = reply.send((
                seq,
                degraded_reply(
                    req.query,
                    LABEL_SHED,
                    timings,
                    engine.current_generation_id(),
                ),
            ));
            return 0;
        }
        // Contain panics (scoring bugs, injected chaos): the worker
        // answers with a labeled internal error and keeps serving, so one
        // poisoned request can never shrink the pool — or deadlock a
        // batch waiting on a reply that will never come.
        let query = req.query.clone();
        let class = req.algorithm;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = serpdiv_chaos::failpoint("pool.serve");
            engine.search(req)
        }));
        let response = match result {
            Ok(mut response) => {
                response.timings.queue_wait_us = queue_wait_us;
                // Feed the class's service-time estimate — engine work
                // only (queue wait excluded), shed/panic replies never
                // pollute it.
                ewma.observe(class, response.timings.total_us);
                response
            }
            Err(_) => {
                let timings = StageTimings {
                    queue_wait_us,
                    total_us: enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                    ..StageTimings::default()
                };
                engine.record_out_of_band(Degradation::Internal, timings);
                degraded_reply(
                    query,
                    LABEL_INTERNAL,
                    timings,
                    engine.current_generation_id(),
                )
            }
        };
        // Service time excluding the queue wait: what the worker itself
        // spent on this request.
        let served_us = response.timings.total_us;
        // A dropped reply receiver just means the client stopped
        // waiting; keep serving.
        let _ = reply.send((seq, response));
        served_us
    }

    /// Number of serving threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one request; the response arrives on the returned channel.
    /// Never blocks on the workers.
    pub fn submit(&self, req: QueryRequest) -> mpsc::Receiver<(usize, SearchResponse)> {
        let (reply, rx) = mpsc::channel();
        self.enqueue(0, req, reply);
        rx
    }

    /// Serve a batch concurrently, returning responses in request order.
    ///
    /// With [`AdmissionPolicy::hedge_factor_pct`] set, a request still
    /// unanswered past its class's hedge threshold is re-dispatched once
    /// and the first completion wins — the straggling copy's later reply
    /// is discarded (both copies are real engine work, so both feed the
    /// metrics and the EWMA).
    pub fn serve_batch(&self, requests: Vec<QueryRequest>) -> Vec<SearchResponse> {
        let n = requests.len();
        let (reply, rx) = mpsc::channel();
        let hedging = self.policy.hedge_factor_pct > 0;
        let mut pending: Vec<Option<QueryRequest>> = if hedging {
            requests.iter().map(|r| Some(r.clone())).collect()
        } else {
            Vec::new()
        };
        let submitted = Instant::now();
        for (seq, req) in requests.into_iter().enumerate() {
            self.enqueue(seq, req, reply.clone());
        }
        let mut out: Vec<Option<SearchResponse>> = (0..n).map(|_| None).collect();
        if !hedging {
            drop(reply);
            for (seq, response) in rx {
                out[seq] = Some(response);
            }
        } else {
            let mut hedged = vec![false; n];
            let mut filled = 0usize;
            while filled < n {
                match rx.recv_timeout(std::time::Duration::from_micros(200)) {
                    Ok((seq, response)) => {
                        // First completion wins; the losing copy's reply
                        // lands here later and is dropped on the floor.
                        if out[seq].is_none() {
                            out[seq] = Some(response);
                            filled += 1;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // A hedge only helps when a *worker* is the
                        // straggler: with jobs still queued, the batch is
                        // merely backlogged and a duplicate at the back
                        // of the same queue would deepen the backlog
                        // without overtaking anything.
                        if self.depth.load(Ordering::Relaxed) > 0 {
                            continue;
                        }
                        let waited =
                            submitted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        for seq in 0..n {
                            if out[seq].is_some() || hedged[seq] {
                                continue;
                            }
                            let class = pending[seq].as_ref().expect("unanswered ⇒ kept").algorithm;
                            let predicted = self.ewma.predict(class);
                            if predicted == 0 {
                                continue; // unseeded class: no basis to call it late
                            }
                            let threshold =
                                predicted.saturating_mul(self.policy.hedge_factor_pct) / 100;
                            if waited > threshold {
                                hedged[seq] = true;
                                self.engine.record_hedge();
                                let req = pending[seq].take().expect("unanswered ⇒ kept");
                                self.dispatch(seq, req, true, reply.clone());
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            drop(reply);
        }
        out.into_iter()
            .map(|r| r.expect("a serving worker died before replying"))
            .collect()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The pool's admission policy.
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The pool's current service-time EWMA for `algorithm` in µs (0 ⇒
    /// no samples yet) — what deadline-aware admission compares against
    /// the engine's budget.
    pub fn predicted_service_us(&self, algorithm: AlgorithmKind) -> u64 {
        self.ewma.predict(algorithm)
    }

    fn enqueue(&self, seq: usize, req: QueryRequest, reply: mpsc::Sender<(usize, SearchResponse)>) {
        let _ = serpdiv_chaos::failpoint("pool.enqueue");
        let over_depth = self.policy.max_queue > 0
            && self.depth.load(Ordering::Relaxed) >= self.policy.max_queue;
        // Deadline-aware: when this class's expected service time alone
        // already overruns the whole per-request budget, the pipeline
        // would burn a worker just to serve the degraded baseline — shed
        // for free instead. Two atomic loads, no engine work.
        let doomed = self.policy.deadline_aware && {
            let deadline = self.engine.config().deadline_us;
            deadline > 0 && self.ewma.predict(req.algorithm) > deadline
        };
        if over_depth || doomed {
            let timings = StageTimings::default();
            self.engine.record_out_of_band(Degradation::Shed, timings);
            let _ = reply.send((
                seq,
                degraded_reply(
                    req.query,
                    LABEL_SHED,
                    timings,
                    self.engine.current_generation_id(),
                ),
            ));
            return;
        }
        self.dispatch(seq, req, false, reply);
    }

    /// Put one job on the queue, past admission (hedge copies enter
    /// here directly — see [`AdmissionPolicy::hedge_factor_pct`]).
    fn dispatch(
        &self,
        seq: usize,
        req: QueryRequest,
        hedge: bool,
        reply: mpsc::Sender<(usize, SearchResponse)>,
    ) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.queue
            .as_ref()
            .expect("pool is shutting down")
            .send(Job {
                seq,
                req,
                enqueued: Instant::now(),
                hedge,
                reply,
            })
            .expect("all serving workers have exited");
    }
}

/// An empty, degraded, never-cached response carrying `label` — the shape
/// of every page the pool produces without running the engine. Stamped
/// with the generation that was current when the reply was minted (no
/// pipeline ran, so there is no pinned generation to report).
fn degraded_reply(
    query: String,
    label: &'static str,
    timings: StageTimings,
    generation: u64,
) -> SearchResponse {
    SearchResponse {
        query,
        algorithm: label,
        diversified: false,
        cache_hit: false,
        degraded: true,
        results: Arc::new(Vec::new()),
        generation,
        timings,
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue so workers drain and exit, then join them.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use serpdiv_core::{AlgorithmKind, PipelineParams, UtilityParams};
    use serpdiv_index::{Document, IndexBuilder};
    use serpdiv_mining::SpecializationModel;

    fn engine() -> Arc<SearchEngine> {
        let mut b = IndexBuilder::new();
        for i in 0..4u32 {
            b.add(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery",
            ));
        }
        for i in 4..8u32 {
            b.add(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest juice",
            ));
        }
        let model = SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap();
        Arc::new(SearchEngine::deploy(
            Arc::new(b.build()),
            Arc::new(model),
            EngineConfig {
                n_candidates: 8,
                params: PipelineParams {
                    utility: UtilityParams { threshold_c: 0.4 },
                    ..PipelineParams::default()
                },
                ..EngineConfig::default()
            },
        ))
    }

    #[test]
    fn batch_preserves_request_order() {
        let pool = WorkerPool::new(engine(), 4);
        assert_eq!(pool.num_workers(), 4);
        let reqs: Vec<QueryRequest> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    QueryRequest::new("apple", 4, AlgorithmKind::OptSelect)
                } else {
                    QueryRequest::new("apple fruit", 2, AlgorithmKind::Baseline)
                }
            })
            .collect();
        let responses = pool.serve_batch(reqs);
        assert_eq!(responses.len(), 40);
        for (i, r) in responses.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(r.query, "apple");
                assert_eq!(r.results.len(), 4);
            } else {
                assert_eq!(r.query, "apple fruit");
                assert_eq!(r.results.len(), 2);
            }
        }
    }

    #[test]
    fn batch_responses_match_direct_calls() {
        let shared = engine();
        let pool = WorkerPool::new(shared.clone(), 3);
        let req = QueryRequest::new("apple", 4, AlgorithmKind::XQuad);
        let direct = shared.search(req.clone());
        let via_pool = pool.serve_batch(vec![req]).remove(0);
        assert_eq!(
            direct.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            via_pool.results.iter().map(|r| r.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn submit_single() {
        let pool = WorkerPool::new(engine(), 2);
        let rx = pool.submit(QueryRequest::new("apple", 3, AlgorithmKind::IaSelect));
        let (seq, response) = rx.recv().expect("reply");
        assert_eq!(seq, 0);
        assert_eq!(response.results.len(), 3);
    }

    #[test]
    fn queue_wait_is_measured_and_aggregated() {
        let shared = engine();
        let pool = WorkerPool::new(shared.clone(), 2);
        let reqs: Vec<QueryRequest> = (0..20)
            .map(|_| QueryRequest::new("apple", 4, AlgorithmKind::OptSelect))
            .collect();
        let responses = pool.serve_batch(reqs);
        // Every pooled response carries a measured (possibly zero) wait;
        // the engine aggregates one wait sample per pooled request.
        assert_eq!(responses.len(), 20);
        let m = shared.metrics();
        assert_eq!(m.queue_waits, 20);
        assert!(m.mean_queue_wait_us >= 0.0);
        // Direct engine calls bypass the queue and record no wait.
        let direct = shared.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(direct.timings.queue_wait_us, 0);
        assert_eq!(shared.metrics().queue_waits, 20);
    }

    #[test]
    fn empty_batch() {
        let pool = WorkerPool::new(engine(), 2);
        assert!(pool.serve_batch(Vec::new()).is_empty());
    }

    /// A stage that sleeps before handing off to the rest of the default
    /// chain — makes a single worker predictably slow so the queue fills.
    struct SleepStage(std::time::Duration);

    impl crate::stages::Stage for SleepStage {
        fn kind(&self) -> crate::stages::StageKind {
            crate::stages::StageKind::Detect
        }
        fn run<'a>(
            &self,
            _engine: &SearchEngine,
            _generation: &'a crate::generation::Generation,
            _ctx: &mut crate::stages::PipelineContext<'a>,
        ) -> crate::stages::StageOutcome {
            std::thread::sleep(self.0);
            crate::stages::StageOutcome::Continue
        }
    }

    fn slow_engine(delay: std::time::Duration) -> Arc<SearchEngine> {
        slow_engine_with_deadline(delay, 0)
    }

    fn slow_engine_with_deadline(
        delay: std::time::Duration,
        deadline_us: u64,
    ) -> Arc<SearchEngine> {
        let shared = engine();
        let mut chain = crate::stages::default_stage_chain();
        chain.insert(0, Box::new(SleepStage(delay)));
        // Rebuild a fresh engine sharing the same artifacts, cache off so
        // repeats stay slow.
        let rebuilt = SearchEngine::with_retriever(
            shared.index().clone(),
            shared.index().clone(),
            shared.model().clone(),
            shared.store().clone(),
            shared.compiled().clone(),
            EngineConfig {
                cache_capacity: 0,
                n_candidates: 8,
                deadline_us,
                params: PipelineParams {
                    utility: UtilityParams { threshold_c: 0.4 },
                    ..PipelineParams::default()
                },
                ..EngineConfig::default()
            },
        )
        .with_stage_chain(chain);
        Arc::new(rebuilt)
    }

    #[test]
    fn bounded_queue_sheds_overflow_at_enqueue() {
        let shared = slow_engine(std::time::Duration::from_millis(30));
        let pool = WorkerPool::with_admission(
            shared.clone(),
            1,
            AdmissionPolicy {
                max_queue: 1,
                ..AdmissionPolicy::default()
            },
        );
        let reqs: Vec<QueryRequest> = (0..12)
            .map(|_| QueryRequest::new("apple", 4, AlgorithmKind::OptSelect))
            .collect();
        let responses = pool.serve_batch(reqs);
        assert_eq!(responses.len(), 12, "every request gets *an* answer");
        let shed: Vec<_> = responses
            .iter()
            .filter(|r| r.algorithm == LABEL_SHED)
            .collect();
        let served: Vec<_> = responses
            .iter()
            .filter(|r| r.algorithm != LABEL_SHED)
            .collect();
        assert!(!shed.is_empty(), "a 1-deep queue must shed a 12-burst");
        assert!(!served.is_empty(), "admission must not shed everything");
        for r in &shed {
            assert!(r.degraded);
            assert!(!r.diversified);
            assert!(!r.cache_hit);
            assert!(r.results.is_empty());
        }
        for r in &served {
            assert_eq!(r.results.len(), 4);
        }
        let m = shared.metrics();
        assert_eq!(m.shed, shed.len() as u64);
        assert_eq!(
            m.requests,
            m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors,
            "leaf classes partition the request total"
        );
        // Shed responses never enter the result cache (there is no cache
        // here at all, but the label asserts the path: no engine work ran).
    }

    #[test]
    fn stale_queued_requests_are_shed_at_pickup() {
        let shared = slow_engine(std::time::Duration::from_millis(25));
        let pool = WorkerPool::with_admission(
            shared.clone(),
            1,
            AdmissionPolicy {
                max_queue_wait_us: 5_000, // 5 ms: far below one 25 ms service time
                ..AdmissionPolicy::default()
            },
        );
        let reqs: Vec<QueryRequest> = (0..5)
            .map(|_| QueryRequest::new("apple", 4, AlgorithmKind::OptSelect))
            .collect();
        let responses = pool.serve_batch(reqs);
        let shed = responses
            .iter()
            .filter(|r| r.algorithm == LABEL_SHED)
            .count();
        let served = responses
            .iter()
            .filter(|r| r.algorithm != LABEL_SHED)
            .count();
        // The in-flight request is served; everything that sat behind a
        // 25 ms service time exceeded the 5 ms staleness bound.
        assert!(served >= 1);
        assert!(shed >= 1, "stale jobs must be shed at pickup");
        assert_eq!(shared.metrics().shed, shed as u64);
        for r in responses.iter().filter(|r| r.algorithm == LABEL_SHED) {
            assert!(r.timings.queue_wait_us > 5_000);
            assert!(r.degraded);
        }
    }

    /// A stage that panics on a marker query — the non-chaos way to test
    /// worker panic containment (chaos arming is process-global and would
    /// leak into concurrently running tests).
    struct PanicStage;

    impl crate::stages::Stage for PanicStage {
        fn kind(&self) -> crate::stages::StageKind {
            crate::stages::StageKind::Detect
        }
        fn run<'a>(
            &self,
            _engine: &SearchEngine,
            _generation: &'a crate::generation::Generation,
            ctx: &mut crate::stages::PipelineContext<'a>,
        ) -> crate::stages::StageOutcome {
            assert!(ctx.request.query != "boom", "injected stage panic");
            crate::stages::StageOutcome::Continue
        }
    }

    #[test]
    fn worker_contains_panics_and_keeps_serving() {
        let shared = engine();
        let mut chain = crate::stages::default_stage_chain();
        chain.insert(0, Box::new(PanicStage));
        let rebuilt = Arc::new(
            SearchEngine::with_retriever(
                shared.index().clone(),
                shared.index().clone(),
                shared.model().clone(),
                shared.store().clone(),
                shared.compiled().clone(),
                EngineConfig {
                    n_candidates: 8,
                    params: PipelineParams {
                        utility: UtilityParams { threshold_c: 0.4 },
                        ..PipelineParams::default()
                    },
                    ..EngineConfig::default()
                },
            )
            .with_stage_chain(chain),
        );
        let pool = WorkerPool::new(rebuilt.clone(), 2);
        let reqs = vec![
            QueryRequest::new("apple", 4, AlgorithmKind::OptSelect),
            QueryRequest::new("boom", 4, AlgorithmKind::OptSelect),
            QueryRequest::new("apple", 4, AlgorithmKind::OptSelect),
            QueryRequest::new("boom", 4, AlgorithmKind::OptSelect),
        ];
        // serve_batch must not hang or panic even though two requests
        // kill their stage: the worker catches, answers, and survives.
        let responses = pool.serve_batch(reqs);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(r.algorithm, LABEL_INTERNAL, "request {i}");
                assert!(r.degraded);
                assert!(r.results.is_empty());
                assert_eq!(r.query, "boom");
            } else {
                assert_eq!(r.results.len(), 4, "request {i}");
                assert!(!r.degraded);
            }
        }
        let m = rebuilt.metrics();
        assert_eq!(m.internal_errors, 2);
        assert_eq!(
            m.requests,
            m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors
        );
        // The pool still has live workers: a follow-up batch is served.
        let again = pool.serve_batch(vec![QueryRequest::new("apple", 3, AlgorithmKind::Mmr)]);
        assert_eq!(again[0].results.len(), 3);
    }

    #[test]
    fn deadline_aware_admission_sheds_doomed_classes() {
        // 20 ms of service against a 1 ms budget: every served OptSelect
        // request exhausts its deadline and degrades. Once the class's
        // EWMA has seen that, deadline-aware admission refuses the class
        // at enqueue instead of burning a worker for 20 ms per reply.
        let shared = slow_engine_with_deadline(std::time::Duration::from_millis(20), 1_000);
        let pool = WorkerPool::with_admission(
            shared.clone(),
            1,
            AdmissionPolicy {
                deadline_aware: true,
                ..AdmissionPolicy::default()
            },
        );
        // The class is unseeded: the probe request is admitted (and
        // served degraded, seeding the estimate).
        let probe = pool
            .serve_batch(vec![QueryRequest::new(
                "apple",
                4,
                AlgorithmKind::OptSelect,
            )])
            .remove(0);
        assert_ne!(probe.algorithm, LABEL_SHED);
        assert!(probe.degraded, "20 ms of work cannot meet a 1 ms budget");
        assert!(
            pool.predicted_service_us(AlgorithmKind::OptSelect) > 1_000,
            "the probe must have seeded the estimate above the budget"
        );
        // Now the estimate dwarfs the budget: shed at enqueue, instantly.
        let shed = pool
            .serve_batch(vec![QueryRequest::new(
                "apple",
                4,
                AlgorithmKind::OptSelect,
            )])
            .remove(0);
        assert_eq!(shed.algorithm, LABEL_SHED);
        assert!(shed.degraded && shed.results.is_empty());
        // Other classes have no samples yet and pass admission untouched.
        let other = pool
            .serve_batch(vec![QueryRequest::new("apple", 4, AlgorithmKind::Baseline)])
            .remove(0);
        assert_ne!(other.algorithm, LABEL_SHED);
        let m = shared.metrics();
        assert_eq!(m.shed, 1);
        assert_eq!(
            m.requests,
            m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors
        );
    }

    /// Stalls the *first* request for the marker query and passes every
    /// later copy through untouched — a deterministic single-straggler:
    /// the hedge duplicate runs clean and wins the race.
    struct StallOnce {
        marker: &'static str,
        delay: std::time::Duration,
        fired: std::sync::atomic::AtomicBool,
    }

    impl crate::stages::Stage for StallOnce {
        fn kind(&self) -> crate::stages::StageKind {
            crate::stages::StageKind::Detect
        }
        fn run<'a>(
            &self,
            _engine: &SearchEngine,
            _generation: &'a crate::generation::Generation,
            ctx: &mut crate::stages::PipelineContext<'a>,
        ) -> crate::stages::StageOutcome {
            if ctx.request.query == self.marker && !self.fired.swap(true, Ordering::SeqCst) {
                std::thread::sleep(self.delay);
            }
            crate::stages::StageOutcome::Continue
        }
    }

    #[test]
    fn hedged_redispatch_races_past_a_straggling_worker() {
        let stall = std::time::Duration::from_millis(150);
        let shared = engine();
        let mut chain = crate::stages::default_stage_chain();
        chain.insert(
            0,
            Box::new(StallOnce {
                marker: "apple laggard",
                delay: stall,
                fired: std::sync::atomic::AtomicBool::new(false),
            }),
        );
        let rebuilt = Arc::new(
            SearchEngine::with_retriever(
                shared.index().clone(),
                shared.index().clone(),
                shared.model().clone(),
                shared.store().clone(),
                shared.compiled().clone(),
                EngineConfig {
                    cache_capacity: 0, // the hedge must recompute, not hit
                    n_candidates: 8,
                    params: PipelineParams {
                        utility: UtilityParams { threshold_c: 0.4 },
                        ..PipelineParams::default()
                    },
                    ..EngineConfig::default()
                },
            )
            .with_stage_chain(chain),
        );
        let pool = WorkerPool::with_admission(
            rebuilt.clone(),
            2,
            AdmissionPolicy {
                hedge_factor_pct: 300, // hedge at 3× the expected service time
                ..AdmissionPolicy::default()
            },
        );
        // Seed the class EWMA with clean requests (unseeded classes are
        // never hedged; these don't match the stall marker).
        let warm = pool.serve_batch(
            (0..8)
                .map(|_| QueryRequest::new("apple", 4, AlgorithmKind::OptSelect))
                .collect(),
        );
        assert!(warm.iter().all(|r| !r.degraded));
        assert_eq!(rebuilt.metrics().hedges, 0, "clean traffic never hedges");
        let predicted = pool.predicted_service_us(AlgorithmKind::OptSelect);
        assert!(predicted > 0 && predicted < stall.as_micros() as u64 / 3);

        // One straggler: the first pickup stalls 150 ms in-stage, worker
        // 2 sits idle. Past 3× the estimate the batch re-dispatches a
        // duplicate; the clean copy answers in well under the stall, so
        // the winning response cannot be the straggler's.
        let out = pool
            .serve_batch(vec![QueryRequest::new(
                "apple laggard",
                4,
                AlgorithmKind::OptSelect,
            )])
            .remove(0);
        assert!(!out.degraded);
        assert_eq!(out.results.len(), 4);
        assert!(
            out.timings.total_us < stall.as_micros() as u64,
            "the hedge copy must win the race, not the {} µs straggler (got {} µs)",
            stall.as_micros(),
            out.timings.total_us
        );
        let m = rebuilt.metrics();
        assert_eq!(m.hedges, 1, "exactly one hedge for one straggler");
        // Both copies ran the engine: the class partition stays exact
        // (the loser's reply was discarded, not its accounting).
        assert_eq!(
            m.requests,
            m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors
        );
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(engine(), 2);
        let _ = pool.serve_batch(vec![QueryRequest::new(
            "apple",
            2,
            AlgorithmKind::OptSelect,
        )]);
        drop(pool); // must not hang
    }
}
