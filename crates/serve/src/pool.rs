//! The worker-pool executor: a fixed set of OS threads serving requests
//! from a shared queue.
//!
//! Query serving is CPU-bound (retrieval + utility math), so a
//! thread-per-core pool over a plain MPMC hand-off — `std::sync::mpsc`
//! with the receiver behind a mutex — saturates the hardware without an
//! async runtime. Workers share the engine through an `Arc`; the engine is
//! immutable after deployment, so there is no cross-request locking outside
//! the result cache's shards.
//!
//! When the retrieval layer is a sharded index backed by a persistent
//! [`ScoringExecutor`](serpdiv_index::ScoringExecutor), the pool's
//! workers act as scatter *submitters*: each request hands its shard
//! tasks to the shared scoring pool (helping drain its own batch while it
//! waits), so total scoring threads stay `pool workers + executor
//! threads` instead of multiplying per query.

use crate::engine::SearchEngine;
use crate::request::{QueryRequest, SearchResponse};
use parking_lot::Mutex;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

struct Job {
    seq: usize,
    req: QueryRequest,
    /// When the job entered the queue; the dequeuing worker turns it into
    /// the response's `queue_wait_us`.
    enqueued: Instant,
    reply: mpsc::Sender<(usize, SearchResponse)>,
}

/// A pool of serving threads over one shared [`SearchEngine`].
pub struct WorkerPool {
    queue: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` serving threads (at least one).
    pub fn new(engine: Arc<SearchEngine>, workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let engine = engine.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("serpdiv-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the dequeue, not the work.
                        let job = match rx.lock().recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed: shut down
                        };
                        // Enqueue → pickup is the saturation signal the
                        // stage timings cannot see (they start after).
                        let queue_wait_us =
                            job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        engine.record_queue_wait(queue_wait_us);
                        let mut response = engine.search(job.req);
                        response.timings.queue_wait_us = queue_wait_us;
                        // A dropped reply receiver just means the client
                        // stopped waiting; keep serving.
                        let _ = job.reply.send((job.seq, response));
                    })
                    .expect("failed to spawn serving worker")
            })
            .collect();
        WorkerPool {
            queue: Some(tx),
            workers: handles,
        }
    }

    /// Number of serving threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one request; the response arrives on the returned channel.
    /// Never blocks on the workers.
    pub fn submit(&self, req: QueryRequest) -> mpsc::Receiver<(usize, SearchResponse)> {
        let (reply, rx) = mpsc::channel();
        self.enqueue(0, req, reply);
        rx
    }

    /// Serve a batch concurrently, returning responses in request order.
    pub fn serve_batch(&self, requests: Vec<QueryRequest>) -> Vec<SearchResponse> {
        let n = requests.len();
        let (reply, rx) = mpsc::channel();
        for (seq, req) in requests.into_iter().enumerate() {
            self.enqueue(seq, req, reply.clone());
        }
        drop(reply);
        let mut out: Vec<Option<SearchResponse>> = (0..n).map(|_| None).collect();
        for (seq, response) in rx {
            out[seq] = Some(response);
        }
        out.into_iter()
            .map(|r| r.expect("a serving worker died before replying"))
            .collect()
    }

    fn enqueue(&self, seq: usize, req: QueryRequest, reply: mpsc::Sender<(usize, SearchResponse)>) {
        self.queue
            .as_ref()
            .expect("pool is shutting down")
            .send(Job {
                seq,
                req,
                enqueued: Instant::now(),
                reply,
            })
            .expect("all serving workers have exited");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue so workers drain and exit, then join them.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use serpdiv_core::{AlgorithmKind, PipelineParams, UtilityParams};
    use serpdiv_index::{Document, IndexBuilder};
    use serpdiv_mining::SpecializationModel;

    fn engine() -> Arc<SearchEngine> {
        let mut b = IndexBuilder::new();
        for i in 0..4u32 {
            b.add(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery",
            ));
        }
        for i in 4..8u32 {
            b.add(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest juice",
            ));
        }
        let model = SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap();
        Arc::new(SearchEngine::deploy(
            Arc::new(b.build()),
            Arc::new(model),
            EngineConfig {
                n_candidates: 8,
                params: PipelineParams {
                    utility: UtilityParams { threshold_c: 0.4 },
                    ..PipelineParams::default()
                },
                ..EngineConfig::default()
            },
        ))
    }

    #[test]
    fn batch_preserves_request_order() {
        let pool = WorkerPool::new(engine(), 4);
        assert_eq!(pool.num_workers(), 4);
        let reqs: Vec<QueryRequest> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    QueryRequest::new("apple", 4, AlgorithmKind::OptSelect)
                } else {
                    QueryRequest::new("apple fruit", 2, AlgorithmKind::Baseline)
                }
            })
            .collect();
        let responses = pool.serve_batch(reqs);
        assert_eq!(responses.len(), 40);
        for (i, r) in responses.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(r.query, "apple");
                assert_eq!(r.results.len(), 4);
            } else {
                assert_eq!(r.query, "apple fruit");
                assert_eq!(r.results.len(), 2);
            }
        }
    }

    #[test]
    fn batch_responses_match_direct_calls() {
        let shared = engine();
        let pool = WorkerPool::new(shared.clone(), 3);
        let req = QueryRequest::new("apple", 4, AlgorithmKind::XQuad);
        let direct = shared.search(req.clone());
        let via_pool = pool.serve_batch(vec![req]).remove(0);
        assert_eq!(
            direct.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            via_pool.results.iter().map(|r| r.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn submit_single() {
        let pool = WorkerPool::new(engine(), 2);
        let rx = pool.submit(QueryRequest::new("apple", 3, AlgorithmKind::IaSelect));
        let (seq, response) = rx.recv().expect("reply");
        assert_eq!(seq, 0);
        assert_eq!(response.results.len(), 3);
    }

    #[test]
    fn queue_wait_is_measured_and_aggregated() {
        let shared = engine();
        let pool = WorkerPool::new(shared.clone(), 2);
        let reqs: Vec<QueryRequest> = (0..20)
            .map(|_| QueryRequest::new("apple", 4, AlgorithmKind::OptSelect))
            .collect();
        let responses = pool.serve_batch(reqs);
        // Every pooled response carries a measured (possibly zero) wait;
        // the engine aggregates one wait sample per pooled request.
        assert_eq!(responses.len(), 20);
        let m = shared.metrics();
        assert_eq!(m.queue_waits, 20);
        assert!(m.mean_queue_wait_us >= 0.0);
        // Direct engine calls bypass the queue and record no wait.
        let direct = shared.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(direct.timings.queue_wait_us, 0);
        assert_eq!(shared.metrics().queue_waits, 20);
    }

    #[test]
    fn empty_batch() {
        let pool = WorkerPool::new(engine(), 2);
        assert!(pool.serve_batch(Vec::new()).is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(engine(), 2);
        let _ = pool.serve_batch(vec![QueryRequest::new(
            "apple",
            2,
            AlgorithmKind::OptSelect,
        )]);
        drop(pool); // must not hang
    }
}
