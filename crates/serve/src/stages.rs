//! The stage-oriented request pipeline.
//!
//! The uncached request lifecycle is a chain of composable [`Stage`] units
//! — **Detect → Retrieve → Surrogate → Utility → Select** — driven by a
//! thin loop in [`SearchEngine`]: each stage reads and advances one
//! [`PipelineContext`], the driver times it, and a stage can short-circuit
//! the rest of the chain ([`StageOutcome::Finish`]) when the request is
//! already answerable (baseline passthrough, empty retrieval, exhausted
//! budget). New serving scenarios plug in as new stages (or stage
//! reorderings) without touching the driver; deadline degradation in
//! [`SelectStage`] is the worked example.
//!
//! Every stage runs against the request's **pinned [`Generation`]** — the
//! immutable bundle the request captured once at admission. Stages never
//! read serving state through the engine (which may have swapped to a
//! newer generation mid-request); they read it through the `generation`
//! argument, which is what makes a concurrent hot swap unobservable from
//! inside a request.
//!
//! # Example: a custom stage
//!
//! ```
//! use serpdiv_serve::{
//!     Generation, PipelineContext, SearchEngine, Stage, StageKind, StageOutcome,
//! };
//!
//! /// Refuses pages larger than 50 results (quota enforcement).
//! struct ClampK;
//!
//! impl Stage for ClampK {
//!     fn kind(&self) -> StageKind {
//!         StageKind::Detect
//!     }
//!
//!     fn run<'a>(
//!         &self,
//!         _engine: &SearchEngine,
//!         _generation: &'a Generation,
//!         ctx: &mut PipelineContext<'a>,
//!     ) -> StageOutcome {
//!         if ctx.request.k > 50 {
//!             ctx.algorithm = "rejected (k too large)";
//!             return StageOutcome::Finish;
//!         }
//!         StageOutcome::Continue
//!     }
//! }
//! ```

use crate::budget::Budget;
use crate::engine::SearchEngine;
use crate::generation::Generation;
use crate::request::{QueryRequest, StageTimings};
use serpdiv_core::{
    assemble_input_from_surrogates, assemble_input_with_scorer, AlgorithmKind, DiversifyInput,
};
use serpdiv_index::{ScoredDoc, SparseVector};
use serpdiv_mining::SpecializationEntry;
use std::sync::Arc;
use std::time::Instant;

/// What the driver does after a stage returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// Proceed to the next stage in the chain.
    Continue,
    /// The response is complete — skip every remaining stage.
    Finish,
}

/// Which latency-accounting bucket a stage's wall time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Ambiguity detection (specialization-model lookup).
    Detect,
    /// Baseline retrieval through the deployed [`Retriever`].
    ///
    /// [`Retriever`]: serpdiv_index::Retriever
    Retrieve,
    /// Candidate snippet-surrogate construction.
    Surrogate,
    /// Utility-matrix computation against the compiled store.
    Utility,
    /// Diversifier selection (or budget-degraded passthrough).
    Select,
}

impl StageKind {
    /// The chaos failpoint name the driver fires before running a stage
    /// of this kind (see the `serpdiv-chaos` crate).
    pub fn failpoint_site(&self) -> &'static str {
        match self {
            StageKind::Detect => "stage.detect",
            StageKind::Retrieve => "stage.retrieve",
            StageKind::Surrogate => "stage.surrogate",
            StageKind::Utility => "stage.utility",
            StageKind::Select => "stage.select",
        }
    }
}

/// Mutable per-request state threaded through the stage chain.
///
/// Stages communicate exclusively through this context; the driver owns
/// the timing and the final response assembly.
pub struct PipelineContext<'a> {
    /// The request being served.
    pub request: &'a QueryRequest,
    /// When the engine accepted the request (budgets measure against it).
    pub started: Instant,
    /// The request's compute budget: checked by the driver at every stage
    /// edge, by budget-aware stages on entry, and propagated into the
    /// retrieval layer's wire deadlines.
    pub budget: Budget,
    /// Detected specialization entry (`None` ⇒ not ambiguous, or a
    /// `Baseline` request that skips detection).
    pub entry: Option<&'a SpecializationEntry>,
    /// The retrieved candidate pool `Rq` (baseline ranking order).
    pub candidates: Vec<ScoredDoc>,
    /// Snippet-surrogate vectors, one per candidate.
    pub vectors: Vec<Arc<SparseVector>>,
    /// The assembled diversification input (utility matrix etc.).
    pub input: Option<DiversifyInput>,
    /// The final ranked page.
    pub page: Vec<ScoredDoc>,
    /// Whether diversification ran.
    pub diversified: bool,
    /// Whether the select budget forced a baseline fallback.
    pub degraded: bool,
    /// Whether retrieval lost at least one index shard (partial gather
    /// from a distributed retriever); implies `degraded`.
    pub shard_loss: bool,
    /// Name of the algorithm that produced the page.
    pub algorithm: &'static str,
    /// Per-stage wall time, filled in by the driver.
    pub timings: StageTimings,
}

impl<'a> PipelineContext<'a> {
    /// Fresh context for one request.
    pub fn new(request: &'a QueryRequest, started: Instant, budget: Budget) -> Self {
        PipelineContext {
            request,
            started,
            budget,
            entry: None,
            candidates: Vec::new(),
            vectors: Vec::new(),
            input: None,
            page: Vec::new(),
            diversified: false,
            degraded: false,
            shard_loss: false,
            algorithm: "DPH",
            timings: StageTimings::default(),
        }
    }

    /// Microseconds since the engine accepted the request.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

/// One unit of the request pipeline.
///
/// Stages are deployed once per engine and shared across worker threads,
/// so they hold no per-request state (`Send + Sync`); everything mutable
/// lives in the [`PipelineContext`].
pub trait Stage: Send + Sync {
    /// The accounting bucket this stage's wall time is charged to.
    fn kind(&self) -> StageKind;

    /// Advance `ctx` by one stage, reading all serving state from the
    /// request's pinned `generation` (never from the engine's live
    /// handle, which a concurrent swap may move mid-request).
    fn run<'a>(
        &self,
        engine: &SearchEngine,
        generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome;
}

/// The standard five-stage chain of the paper's pipeline.
pub fn default_stage_chain() -> Vec<Box<dyn Stage>> {
    vec![
        Box::new(DetectStage),
        Box::new(RetrieveStage),
        Box::new(SurrogateStage),
        Box::new(UtilityStage),
        Box::new(SelectStage),
    ]
}

/// Ambiguity detection: one hash lookup in the mined
/// [`SpecializationModel`](serpdiv_mining::SpecializationModel).
/// `Baseline` requests skip detection entirely.
pub struct DetectStage;

impl Stage for DetectStage {
    fn kind(&self) -> StageKind {
        StageKind::Detect
    }

    fn run<'a>(
        &self,
        _engine: &SearchEngine,
        generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome {
        if ctx.request.algorithm == AlgorithmKind::Baseline {
            ctx.algorithm = "DPH";
        } else {
            ctx.entry = generation.model().get(&ctx.request.query);
            if ctx.entry.is_none() {
                ctx.algorithm = "DPH (passthrough)";
            }
        }
        StageOutcome::Continue
    }
}

/// Baseline retrieval through the deployed [`Retriever`]
/// (single index, sharded scatter-gather, or the multi-process fleet
/// router — the stage cannot tell). Non-ambiguous queries retrieve
/// exactly `k` and finish the pipeline; ambiguous ones retrieve the
/// candidate pool `n = max(n_candidates, k)`.
///
/// Retrieval is the one stage that can *lose data*: a distributed
/// retriever reports a partial gather (a shard worker timed out or died)
/// through [`Retrieval::complete`](serpdiv_index::Retrieval). A partial
/// candidate pool must not be diversified as if it were the real
/// ranking, so the stage finishes immediately with the surviving top-`k`
/// and the distinct degraded label `"DPH (degraded: shard loss)"` — the
/// page stays correct for the shards that answered, and the loss is
/// visible in the response and the metrics instead of silent.
///
/// [`Retriever`]: serpdiv_index::Retriever
pub struct RetrieveStage;

impl RetrieveStage {
    /// Mark `ctx` as a shard-loss degraded passthrough.
    fn degrade_shard_loss(ctx: &mut PipelineContext<'_>) {
        ctx.shard_loss = true;
        ctx.degraded = true;
        ctx.diversified = false;
        ctx.algorithm = "DPH (degraded: shard loss)";
    }

    /// Mark `ctx` as a budget-exhausted degraded passthrough.
    fn degrade_deadline(ctx: &mut PipelineContext<'_>) {
        ctx.degraded = true;
        ctx.diversified = false;
        ctx.algorithm = "DPH (degraded)";
    }
}

impl Stage for RetrieveStage {
    fn kind(&self) -> StageKind {
        StageKind::Retrieve
    }

    fn run<'a>(
        &self,
        engine: &SearchEngine,
        generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome {
        let query = &ctx.request.query;
        if ctx.entry.is_none() {
            // Passthrough: the page is the baseline top-k.
            let retrieval = generation.retriever().retrieve_with_status_within(
                query,
                ctx.request.k,
                ctx.budget.remaining_us(),
            );
            ctx.page = retrieval.hits;
            if !retrieval.complete {
                Self::degrade_shard_loss(ctx);
            }
            return StageOutcome::Finish;
        }
        if ctx.budget.exhausted() {
            // The budget died before the candidate pool was even fetched:
            // retrieving n candidates for a diversification that will
            // never run is pure waste. Fetch just the k-page under the
            // retriever's own configured deadlines (a zero-µs wire budget
            // would only manufacture shard loss on top of the deadline)
            // and serve it as the degraded baseline.
            let retrieval =
                generation
                    .retriever()
                    .retrieve_with_status_within(query, ctx.request.k, None);
            ctx.page = retrieval.hits;
            if !retrieval.complete {
                Self::degrade_shard_loss(ctx);
            } else {
                Self::degrade_deadline(ctx);
            }
            return StageOutcome::Finish;
        }
        let n = engine.config().n_candidates.max(ctx.request.k);
        let retrieval =
            generation
                .retriever()
                .retrieve_with_status_within(query, n, ctx.budget.remaining_us());
        ctx.candidates = retrieval.hits;
        if !retrieval.complete {
            Self::degrade_shard_loss(ctx);
            ctx.page = ctx.candidates.iter().take(ctx.request.k).copied().collect();
            return StageOutcome::Finish;
        }
        if ctx.candidates.is_empty() {
            ctx.algorithm = "DPH (passthrough)";
            StageOutcome::Finish
        } else {
            StageOutcome::Continue
        }
    }
}

/// Snippet-surrogate vectors for every candidate, memoized per
/// `(doc, query-terms)` when the surrogate cache is enabled.
pub struct SurrogateStage;

impl Stage for SurrogateStage {
    fn kind(&self) -> StageKind {
        StageKind::Surrogate
    }

    fn run<'a>(
        &self,
        engine: &SearchEngine,
        generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome {
        ctx.vectors = engine.surrogate_vectors(generation, &ctx.request.query, &ctx.candidates);
        StageOutcome::Continue
    }
}

/// The `Ũ(d|R_q′)` utility rows (Definition 2): one sparse accumulation
/// per candidate against the compiled specialization index.
pub struct UtilityStage;

impl Stage for UtilityStage {
    fn kind(&self) -> StageKind {
        StageKind::Utility
    }

    fn run<'a>(
        &self,
        engine: &SearchEngine,
        generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome {
        // No detected entry, or surrogates missing/mismatched (possible
        // in custom chains that drop or reorder earlier stages): nothing
        // sound to score — leave `ctx.input` empty and let the select
        // stage fall back to the baseline prefix.
        let Some(entry) = ctx.entry else {
            return StageOutcome::Continue;
        };
        if ctx.vectors.len() != ctx.candidates.len() {
            return StageOutcome::Continue;
        }
        let vectors = std::mem::take(&mut ctx.vectors);
        // Score through the deploy-time precompiled scorer for this entry
        // (bit-identical rows, no per-request gather-and-sort); entries
        // outside the table — possible only with custom detect stages —
        // build one on the fly, exactly as before.
        ctx.input = Some(match generation.scorer_for(&entry.query) {
            Some(scorer) => assemble_input_with_scorer(
                entry,
                scorer,
                &engine.config().params,
                vectors,
                &ctx.candidates,
            ),
            None => assemble_input_from_surrogates(
                entry,
                generation.compiled(),
                &engine.config().params,
                vectors,
                &ctx.candidates,
            ),
        });
        StageOutcome::Continue
    }
}

/// Diversifier selection with per-request budget enforcement.
///
/// When the request's [`Budget`] is already exhausted by the time this
/// stage runs, the stage **degrades to baseline passthrough**: the page
/// is the first `k` candidates of the baseline ranking, served
/// immediately (`"DPH (degraded)"`), and the response/metrics record the
/// degradation. (The driver also checks the budget at every stage edge,
/// so an exhausted request normally degrades before even reaching this
/// stage — this check is the backstop for single-stage custom chains.) Otherwise the request's [`AlgorithmKind`] re-ranks the
/// page through the engine's pre-built [`Diversifier`] trait objects.
///
/// [`Diversifier`]: serpdiv_core::Diversifier
pub struct SelectStage;

impl Stage for SelectStage {
    fn kind(&self) -> StageKind {
        StageKind::Select
    }

    fn run<'a>(
        &self,
        engine: &SearchEngine,
        _generation: &'a Generation,
        ctx: &mut PipelineContext<'a>,
    ) -> StageOutcome {
        let k = ctx.request.k;
        if ctx.budget.exhausted() {
            ctx.page = ctx.candidates.iter().take(k).copied().collect();
            ctx.algorithm = "DPH (degraded)";
            ctx.degraded = true;
            ctx.diversified = false;
            return StageOutcome::Finish;
        }
        // No assembled input (custom chains may skip the utility stage):
        // serve the baseline prefix rather than panicking a worker.
        let Some(input) = ctx.input.take() else {
            ctx.page = ctx.candidates.iter().take(k).copied().collect();
            ctx.algorithm = "DPH (passthrough)";
            ctx.diversified = false;
            return StageOutcome::Finish;
        };
        let diversifier = engine.diversifier_for(ctx.request.algorithm);
        let indices = diversifier.select(&input, k);
        ctx.page = indices.into_iter().map(|i| ctx.candidates[i]).collect();
        ctx.diversified = true;
        ctx.algorithm = diversifier.name();
        StageOutcome::Finish
    }
}
