//! The sharded SERP result cache.
//!
//! Query streams are heavily skewed (Zipfian), so a result cache in front
//! of the diversification pipeline absorbs most of the load — the paper's
//! §4.1 observation that specialization results "are few, popular, and
//! change slowly" applies to whole diversified SERPs as well. The cache is
//! sharded by key hash so concurrent workers rarely contend on the same
//! lock, and each shard evicts LRU.

use crate::lru::LruCache;
use crate::request::RankedResult;
use parking_lot::Mutex;
use serpdiv_core::AlgorithmKind;
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the full identity of a served SERP — including the
/// [`GenerationId`](crate::GenerationId) it was computed against, so a
/// hot swap can never serve a previous generation's page. Stale-
/// generation entries simply stop matching (a miss) and age out of the
/// LRU under new traffic: no global flush, no stall.
pub type CacheKey = (u64, String, usize, AlgorithmKind);

/// A borrowed view of a [`CacheKey`], so lookups can probe the map with
/// request-owned parts (`&str` query) instead of allocating an owned
/// `String` per probe. The owned key is built only on insert.
///
/// `Hash` must visit exactly the fields the owned tuple's derived `Hash`
/// visits, in the same order — that is what makes
/// `HashMap<CacheKey, _>::get::<dyn KeyView>` sound.
trait KeyView {
    fn generation(&self) -> u64;
    fn query(&self) -> &str;
    fn page_size(&self) -> usize;
    fn algorithm(&self) -> AlgorithmKind;
}

impl KeyView for CacheKey {
    fn generation(&self) -> u64 {
        self.0
    }
    fn query(&self) -> &str {
        &self.1
    }
    fn page_size(&self) -> usize {
        self.2
    }
    fn algorithm(&self) -> AlgorithmKind {
        self.3
    }
}

/// The borrowed probe: one request's key parts by reference.
struct KeyParts<'a> {
    generation: u64,
    query: &'a str,
    k: usize,
    algorithm: AlgorithmKind,
}

impl KeyView for KeyParts<'_> {
    fn generation(&self) -> u64 {
        self.generation
    }
    fn query(&self) -> &str {
        self.query
    }
    fn page_size(&self) -> usize {
        self.k
    }
    fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }
}

impl Hash for dyn KeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Mirrors the derived tuple Hash: String delegates to str.
        self.generation().hash(state);
        self.query().hash(state);
        self.page_size().hash(state);
        self.algorithm().hash(state);
    }
}

impl PartialEq for dyn KeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.generation() == other.generation()
            && self.query() == other.query()
            && self.page_size() == other.page_size()
            && self.algorithm() == other.algorithm()
    }
}

impl Eq for dyn KeyView + '_ {}

impl<'a> Borrow<dyn KeyView + 'a> for CacheKey {
    fn borrow(&self) -> &(dyn KeyView + 'a) {
        self
    }
}

/// The cached portion of a response.
#[derive(Debug, Clone)]
pub struct CachedSerp {
    /// Ranked results (shared, so a hit clones an `Arc`, not the page).
    pub results: Arc<Vec<RankedResult>>,
    /// Whether diversification ran when the page was computed.
    pub diversified: bool,
    /// Algorithm name recorded at compute time.
    pub algorithm: &'static str,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Entries currently resident (across all shards).
    pub entries: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded LRU cache of `(generation, query, k, algorithm) → SERP`.
#[derive(Debug)]
pub struct ShardedResultCache {
    shards: Vec<Mutex<LruCache<CacheKey, CachedSerp>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedResultCache {
    /// A cache of `shards` independent LRU shards holding at least
    /// `capacity` entries in total (the per-shard capacity is rounded up,
    /// so the real bound is `capacity.div_ceil(shards) · shards`).
    ///
    /// # Panics
    /// Panics when `shards == 0` or `capacity == 0`.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "need nonzero capacity");
        let per_shard = capacity.div_ceil(shards);
        ShardedResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &(dyn KeyView + '_)) -> &Mutex<LruCache<CacheKey, CachedSerp>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a SERP by its identity parts, counting the outcome. The
    /// probe borrows the query — no allocation on either hit or miss.
    /// Entries written under a different generation never match.
    pub fn get(
        &self,
        generation: u64,
        query: &str,
        k: usize,
        algorithm: AlgorithmKind,
    ) -> Option<CachedSerp> {
        let probe = KeyParts {
            generation,
            query,
            k,
            algorithm,
        };
        let found = self
            .shard(&probe)
            .lock()
            .get_by(&probe as &dyn KeyView)
            .cloned();
        match found {
            Some(serp) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(serp)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly computed SERP (the one place an owned key is
    /// allocated).
    pub fn insert(&self, key: CacheKey, serp: CachedSerp) {
        self.shard(&key as &dyn KeyView).lock().insert(key, serp);
    }

    /// Probe without touching the hit/miss counters — the carry-over
    /// path's look at the *predecessor* generation's tag. That probe is
    /// bookkeeping behind a request whose own lookup was already counted
    /// as a miss by [`get`](Self::get); counting it too would double-bill
    /// the request in the hit rate.
    pub fn peek(
        &self,
        generation: u64,
        query: &str,
        k: usize,
        algorithm: AlgorithmKind,
    ) -> Option<CachedSerp> {
        let probe = KeyParts {
            generation,
            query,
            k,
            algorithm,
        };
        self.shard(&probe)
            .lock()
            .get_by(&probe as &dyn KeyView)
            .cloned()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Drop every cached SERP and reset the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::DocId;

    fn serp(n: usize) -> CachedSerp {
        CachedSerp {
            results: Arc::new(
                (0..n)
                    .map(|i| RankedResult {
                        doc: DocId(i as u32),
                        score: 1.0 / (i + 1) as f64,
                        url: format!("http://x/{i}").into(),
                        title: format!("doc {i}").into(),
                    })
                    .collect(),
            ),
            diversified: true,
            algorithm: "OptSelect",
        }
    }

    fn key(q: &str) -> CacheKey {
        (1, q.to_string(), 10, AlgorithmKind::OptSelect)
    }

    #[test]
    fn miss_then_hit() {
        let cache = ShardedResultCache::new(4, 64);
        assert!(cache
            .get(1, "apple", 10, AlgorithmKind::OptSelect)
            .is_none());
        cache.insert(key("apple"), serp(3));
        let hit = cache
            .get(1, "apple", 10, AlgorithmKind::OptSelect)
            .expect("hit");
        assert_eq!(hit.results.len(), 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn algorithm_is_part_of_the_key() {
        let cache = ShardedResultCache::new(2, 16);
        cache.insert(key("q"), serp(2));
        assert!(cache.get(1, "q", 10, AlgorithmKind::Mmr).is_none());
        assert!(cache.get(1, "q", 5, AlgorithmKind::OptSelect).is_none());
        assert!(cache.get(1, "q", 10, AlgorithmKind::OptSelect).is_some());
    }

    #[test]
    fn generation_is_part_of_the_key() {
        // The hot-swap invariant: a page cached under generation 1 is
        // invisible to generation-2 probes (and vice versa) — a swap can
        // never serve the previous generation's page.
        let cache = ShardedResultCache::new(2, 16);
        cache.insert(key("q"), serp(2));
        assert!(cache.get(2, "q", 10, AlgorithmKind::OptSelect).is_none());
        assert!(cache.get(1, "q", 10, AlgorithmKind::OptSelect).is_some());
    }

    #[test]
    fn borrowed_probe_hashes_like_the_owned_key() {
        // The dyn-KeyView Hash must mirror the derived tuple Hash bit for
        // bit, or shard selection and map lookups silently diverge.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        for (g, q, k, a) in [
            (1, "apple", 10, AlgorithmKind::OptSelect),
            (0, "", 0, AlgorithmKind::Baseline),
            (u64::MAX, "longer query with spaces", 77, AlgorithmKind::Mmr),
        ] {
            let owned: CacheKey = (g, q.to_string(), k, a);
            let mut h1 = DefaultHasher::new();
            owned.hash(&mut h1);
            let mut h2 = DefaultHasher::new();
            let parts = KeyParts {
                generation: g,
                query: q,
                k,
                algorithm: a,
            };
            (&parts as &dyn KeyView).hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "{q:?}");
            let mut h3 = DefaultHasher::new();
            Borrow::<dyn KeyView>::borrow(&owned).hash(&mut h3);
            assert_eq!(h1.finish(), h3.finish(), "{q:?} owned view");
        }
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let cache = ShardedResultCache::new(4, 8); // 2 per shard
        for i in 0..100 {
            cache.insert(key(&format!("q{i}")), serp(1));
        }
        assert!(cache.stats().entries <= 8);
        // Rounded up, never down: 12 entries over 8 shards gives each
        // shard 2, for a real bound of 16 ≥ 12.
        let uneven = ShardedResultCache::new(8, 12);
        for i in 0..100 {
            uneven.insert(key(&format!("q{i}")), serp(1));
        }
        let entries = uneven.stats().entries;
        assert!(entries > 8 && entries <= 16, "got {entries}");
    }

    #[test]
    fn concurrent_access() {
        let cache = Arc::new(ShardedResultCache::new(8, 128));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let k = key(&format!("q{}", (t * 7 + i) % 32));
                        if cache.get(k.0, &k.1, k.2, k.3).is_none() {
                            cache.insert(k, serp(2));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert!(stats.hits > 0);
    }

    #[test]
    fn clear_resets() {
        let cache = ShardedResultCache::new(2, 8);
        cache.insert(key("a"), serp(1));
        cache.get(1, "a", 10, AlgorithmKind::OptSelect);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }
}
