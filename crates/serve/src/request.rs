//! Request/response types of the serving API.

use crate::stages::StageKind;
use serpdiv_core::AlgorithmKind;
use serpdiv_index::DocId;
use std::sync::Arc;

/// Response label of a request refused by worker-pool admission control
/// ([`Degradation::Shed`](crate::Degradation::Shed)).
pub const LABEL_SHED: &str = "shed (overload)";

/// Response label of a request whose serving worker contained a panic
/// ([`Degradation::Internal`](crate::Degradation::Internal)).
pub const LABEL_INTERNAL: &str = "error (internal)";

/// One search request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryRequest {
    /// The raw user query.
    pub query: String,
    /// Size of the returned SERP (`k = |S|`).
    pub k: usize,
    /// Which diversifier re-ranks the page (per request, so one deployment
    /// can serve A/B traffic across algorithms).
    pub algorithm: AlgorithmKind,
}

impl QueryRequest {
    /// Request `k` results for `query` diversified with `algorithm`.
    pub fn new(query: impl Into<String>, k: usize, algorithm: AlgorithmKind) -> Self {
        QueryRequest {
            query: query.into(),
            k,
            algorithm,
        }
    }

    /// The owned result-cache key of this request under `generation`
    /// (allocates — built only when a freshly computed SERP is inserted;
    /// lookups probe with borrowed parts instead, see
    /// [`ShardedResultCache::get`](crate::cache::ShardedResultCache::get)).
    pub(crate) fn cache_key(&self, generation: u64) -> (u64, String, usize, AlgorithmKind) {
        (generation, self.query.clone(), self.k, self.algorithm)
    }
}

/// Wall-clock microseconds spent in each stage of the request lifecycle.
///
/// `total_us` is measured independently of the stage fields (it includes
/// cache probing and response assembly), so it can slightly exceed their
/// sum; a cache hit reports only `total_us`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Ambiguity detection: the specialization-model lookup.
    pub detect_us: u64,
    /// Baseline retrieval (DPH top-`n` over the inverted index).
    pub retrieve_us: u64,
    /// Candidate snippet-surrogate construction (or surrogate-cache hits).
    pub surrogate_us: u64,
    /// Utility computation: the `Ũ(d|R_q′)` matrix against the compiled
    /// specialization index.
    pub utility_us: u64,
    /// Diversifier selection.
    pub select_us: u64,
    /// Time spent queued in the worker pool before a worker picked the
    /// request up (zero when the engine is called directly).
    pub queue_wait_us: u64,
    /// End-to-end service time.
    pub total_us: u64,
}

impl StageTimings {
    /// Charge `us` microseconds to the bucket of `kind` (the stage-driver
    /// accounting hook; a stage may run more than once per request, so
    /// buckets accumulate). Saturating: an accounting overflow must never
    /// panic a serving worker.
    pub fn add(&mut self, kind: StageKind, us: u64) {
        let bucket = match kind {
            StageKind::Detect => &mut self.detect_us,
            StageKind::Retrieve => &mut self.retrieve_us,
            StageKind::Surrogate => &mut self.surrogate_us,
            StageKind::Utility => &mut self.utility_us,
            StageKind::Select => &mut self.select_us,
        };
        *bucket = bucket.saturating_add(us);
    }
}

/// One ranked result of a served SERP.
///
/// `url` and `title` are `Arc<str>` handles into the engine's interned
/// presentation table: materializing a page is `k` refcount bumps, not
/// `2k` string copies per request.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult {
    /// The document.
    pub doc: DocId,
    /// Its baseline retrieval score (diversifiers permute, they do not
    /// re-score).
    pub score: f64,
    /// Document URL (shared with the engine's presentation table).
    pub url: Arc<str>,
    /// Document title (shared with the engine's presentation table).
    pub title: Arc<str>,
}

/// The served SERP with provenance and accounting.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Echo of the request query.
    pub query: String,
    /// Name of the algorithm that produced the ranking (e.g. `"OptSelect"`,
    /// or `"DPH (passthrough)"` when the query was not ambiguous).
    pub algorithm: &'static str,
    /// Whether diversification ran (false ⇒ baseline passthrough).
    pub diversified: bool,
    /// Whether the SERP came from the result cache.
    pub cache_hit: bool,
    /// Whether the select-stage budget was exhausted and the page fell
    /// back to the baseline ranking (never true on cache hits; degraded
    /// pages are not cached).
    pub degraded: bool,
    /// The ranked page, best first, `min(k, n)` entries. Shared with the
    /// result cache: a cache hit bumps a refcount instead of copying the
    /// page.
    pub results: Arc<Vec<RankedResult>>,
    /// The [`GenerationId`](crate::GenerationId) of the serving state this
    /// page was computed against. The whole pipeline ran pinned to this
    /// one generation — under a concurrent hot swap, the page is
    /// bit-identical to what that generation alone would have served.
    pub generation: u64,
    /// Per-stage latency accounting for this request.
    pub timings: StageTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction_and_key() {
        let r = QueryRequest::new("apple", 10, AlgorithmKind::OptSelect);
        assert_eq!(r.query, "apple");
        assert_eq!(r.k, 10);
        let (g, q, k, a) = r.cache_key(7);
        assert_eq!(
            (g, q.as_str(), k, a),
            (7, "apple", 10, AlgorithmKind::OptSelect)
        );
    }

    #[test]
    fn distinct_algorithms_key_differently() {
        let a = QueryRequest::new("q", 5, AlgorithmKind::OptSelect).cache_key(1);
        let b = QueryRequest::new("q", 5, AlgorithmKind::Mmr).cache_key(1);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_generations_key_differently() {
        let a = QueryRequest::new("q", 5, AlgorithmKind::OptSelect).cache_key(1);
        let b = QueryRequest::new("q", 5, AlgorithmKind::OptSelect).cache_key(2);
        assert_ne!(a, b);
    }
}
