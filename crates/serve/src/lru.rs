//! An intrusive-list LRU map — the eviction policy of each result-cache
//! shard.
//!
//! `O(1)` get/insert/evict: a `HashMap` from key to slot index plus a
//! doubly-linked recency list threaded through a slab of slots. No
//! per-operation allocation after the slab reaches capacity (evicted slots
//! are reused in place).

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity + 1),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.get_by(key)
    }

    /// [`get`](Self::get) through any borrowed form of the key (the
    /// `HashMap::get` contract: `Q`'s `Hash`/`Eq` must agree with `K`'s),
    /// so composite owned keys can be probed without allocating them —
    /// e.g. the result cache probes `(String, usize, AlgorithmKind)`
    /// entries with a `&str`-backed view.
    pub fn get_by<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        self.move_to_front(idx);
        Some(&self.slots[idx].value)
    }

    /// Insert (or replace) `key → value`; evicts the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.move_to_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            // Reuse the LRU slot in place.
            let idx = self.tail;
            self.detach(idx);
            let slot = &mut self.slots[idx];
            self.map.remove(&slot.key);
            slot.key = key.clone();
            slot.value = value;
            self.map.insert(key, idx);
            self.attach_front(idx);
        } else {
            let idx = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.attach_front(idx);
        }
    }

    /// Visit every entry from most to least recently used, without
    /// touching recency. Lets a cache owner snapshot entries (e.g. for
    /// cross-generation carry-over) while the shard lock is held.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let slot = &self.slots[idx];
            idx = slot.next;
            Some((&slot.key, &slot.value))
        })
    }

    /// Drop every entry (keeps the allocation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // a is now MRU; b is LRU
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh a
        c.insert("c", 3); // evicts b, not a
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"y"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&0), None);
        c.insert(9, 9);
        assert_eq!(c.get(&9), Some(&9));
    }

    #[test]
    fn stress_against_reference_model() {
        // Compare with a naive Vec-based LRU over a pseudo-random workload.
        let cap = 8;
        let mut lru = LruCache::new(cap);
        let mut reference: Vec<(u64, u64)> = Vec::new(); // MRU first
        let mut state = 0x1234_5678_u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 24;
            let op_insert = state & 1 == 0;
            if op_insert {
                lru.insert(key, key * 7);
                if let Some(pos) = reference.iter().position(|&(k, _)| k == key) {
                    reference.remove(pos);
                }
                reference.insert(0, (key, key * 7));
                reference.truncate(cap);
            } else {
                let got = lru.get(&key).copied();
                let pos = reference.iter().position(|&(k, _)| k == key);
                assert_eq!(got, pos.map(|p| reference[p].1), "key {key}");
                if let Some(p) = pos {
                    let e = reference.remove(p);
                    reference.insert(0, e);
                }
            }
            assert_eq!(lru.len(), reference.len());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8, u8>::new(0);
    }

    #[test]
    fn iter_walks_mru_to_lru_without_touching_recency() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.get(&"a");
        let order: Vec<_> = c.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(order, vec![("a", 1), ("c", 3), ("b", 2)]);
        // Iteration is not a use: b stays the LRU and evicts first.
        c.insert("d", 4);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }
}
