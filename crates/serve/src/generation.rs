//! Generations: epoch-published serving state for zero-downtime updates.
//!
//! Every structure the request pipeline reads — inverted index, retrieval
//! layer, forward index, specialization model, compiled spec store,
//! presentation table — is immutable and `Arc`-shared. This module turns
//! that strength into *live updates*: the whole read set is bundled into
//! one immutable [`Generation`] tagged with a monotonically increasing
//! [`GenerationId`], and running engines see updates only as the atomic
//! publication of a new bundle through a [`GenerationHandle`].
//!
//! ## The torn-request problem, and the pin
//!
//! Swapping the index and the spec store *separately* under live traffic
//! would let one request retrieve against the new index and score against
//! the old spec store — a torn request, silently wrong. The handle makes
//! this impossible by construction: a request calls
//! [`GenerationHandle::pin`] **once**, gets an `Arc<Generation>`, and runs
//! its whole detect→retrieve→surrogate→utility→select pipeline against
//! that one bundle. A publish replaces the *pointer*, never the bundle;
//! in-flight requests keep their pinned generation alive through the
//! refcount and finish on exactly the state they started with.
//!
//! ## Epoch swap without an `ArcSwap` dependency
//!
//! The handle is a `parking_lot::RwLock<Arc<Generation>>` used only as a
//! pointer cell: `pin` takes the lock in shared mode for the nanoseconds
//! of one `Arc` clone, and publish takes it exclusively for the
//! nanoseconds of one pointer store. Publishing therefore waits only for
//! concurrent *pins* (pointer reads), never for in-flight *requests* —
//! they hold the `Arc`, not the lock. No request is ever dropped, stalled,
//! or torn by a swap.
//!
//! ## Validate-then-publish
//!
//! A candidate generation is checked **before** the pointer moves:
//! internal consistency ([`Generation::validate`] — forward index and
//! presentation table must cover the document space, a delta must extend
//! this exact base) and id monotonicity (a stale or replayed id is
//! refused). Serialized artifacts go through the existing checked decoders
//! (`DecodeError`: bad magic, version mismatch, truncation, corruption) in
//! [`SearchEngine::publish_artifacts`](crate::SearchEngine::publish_artifacts).
//! Any failure leaves the old generation serving untouched and returns a
//! [`PublishError`] (counted as `swap_rejected`) — never a crash, never a
//! partial publish.
//!
//! Chaos hooks: publishing fires the `swap.validate` and `swap.publish`
//! failpoints. A `Drop`/`Corrupt` fault at either site aborts the publish
//! (modeling a poisoned artifact pipeline); `Delay`/`Stall` faults slow it
//! down *outside* the pointer lock, so the soak suites can race slow
//! publishes against live traffic.

use crate::engine::PresentationTable;
use parking_lot::RwLock;
use serpdiv_core::{CompiledSpecStore, SpecializationStore, UtilityScorer};
use serpdiv_index::{DecodeError, DeltaIndex, ForwardIndex, InvertedIndex, Retriever};
use serpdiv_mining::SpecializationModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotonically increasing tag of a published [`Generation`]. Engines
/// start at generation 1; every successful publish increases it.
pub type GenerationId = u64;

/// One immutable bundle of everything a request reads: the serving
/// state of one epoch.
///
/// A request pins exactly one `Generation` for its whole pipeline (see
/// the [module docs](self)), so the bundle's parts can never be observed
/// torn across a swap. All fields are `Arc`-shared: successive
/// generations that change only one artifact share the rest, and
/// republishing an identical bundle under a new id is refcount-cheap.
pub struct Generation {
    id: GenerationId,
    index: Arc<InvertedIndex>,
    /// The deployed retrieval layer over the sealed collection only
    /// (plain index, sharded scatter-gather, fleet router).
    sealed: Arc<dyn Retriever>,
    /// What requests actually retrieve through: `sealed` itself, or a
    /// [`DeltaRetriever`](serpdiv_index::DeltaRetriever) gathering the
    /// sealed collection and the delta side by side.
    retriever: Arc<dyn Retriever>,
    model: Arc<SpecializationModel>,
    store: Arc<SpecializationStore>,
    compiled: Arc<CompiledSpecStore>,
    forward: Option<Arc<ForwardIndex>>,
    /// Freshly ingested documents not yet merged into the sealed index.
    delta: Option<Arc<DeltaIndex>>,
    /// Interned `(url, title)` per document (sealed then delta), built
    /// lazily on first materialization or injected to share across
    /// engines.
    presentation: OnceLock<PresentationTable>,
    /// Deploy-time precompiled utility scorers, one per model entry,
    /// `Arc`-shared so republished generations reuse the table.
    scorers: Arc<HashMap<String, UtilityScorer>>,
}

impl Generation {
    /// Bundle a generation from its artifacts, precompiling the
    /// per-entry utility scorers (shared by every later generation that
    /// keeps the same model, see [`Generation::next`]).
    pub fn new(
        id: GenerationId,
        index: Arc<InvertedIndex>,
        retriever: Arc<dyn Retriever>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        forward: Option<Arc<ForwardIndex>>,
    ) -> Self {
        let scorers = Arc::new(
            model
                .iter()
                .map(|entry| {
                    (
                        entry.query.clone(),
                        compiled.scorer(entry.specializations.iter().map(|(s, _)| s.as_str())),
                    )
                })
                .collect::<HashMap<_, _>>(),
        );
        Generation {
            id,
            index,
            sealed: retriever.clone(),
            retriever,
            model,
            store,
            compiled,
            forward,
            delta: None,
            presentation: OnceLock::new(),
            scorers,
        }
    }

    /// A successor bundle: identical artifacts (every `Arc` shared,
    /// scorers included) under the next id. The building block of
    /// [`republish`](crate::SearchEngine::republish) and of successors
    /// that then swap in one changed artifact.
    pub fn next(&self) -> Generation {
        Generation {
            id: self.id + 1,
            index: self.index.clone(),
            sealed: self.sealed.clone(),
            retriever: self.retriever.clone(),
            model: self.model.clone(),
            store: self.store.clone(),
            compiled: self.compiled.clone(),
            forward: self.forward.clone(),
            delta: self.delta.clone(),
            presentation: clone_once(&self.presentation),
            scorers: self.scorers.clone(),
        }
    }

    /// Replace the sealed collection (builder-style, before
    /// publication): a merged or rebuilt index with its retrieval layer
    /// and forward index, clearing any delta. The inherited presentation
    /// table is deliberately *kept* — folding a delta into its base
    /// preserves the document space and its order (sealed docs then
    /// delta docs), so the table still covers; [`validate`](Self::validate)
    /// re-checks coverage before publication either way.
    pub fn with_sealed(
        mut self,
        index: Arc<InvertedIndex>,
        retriever: Arc<dyn Retriever>,
        forward: Option<Arc<ForwardIndex>>,
    ) -> Self {
        self.index = index;
        self.sealed = retriever.clone();
        self.retriever = retriever;
        self.forward = forward;
        self.delta = None;
        self
    }

    /// Attach a delta and the retriever that gathers it alongside the
    /// sealed collection (builder-style, before publication).
    pub fn with_delta(mut self, delta: Arc<DeltaIndex>, retriever: Arc<dyn Retriever>) -> Self {
        self.delta = Some(delta);
        self.retriever = retriever;
        // The presentation table covers the document space, which the
        // delta just grew: drop any inherited table so it is rebuilt (or
        // re-injected) at the new size.
        self.presentation = OnceLock::new();
        self
    }

    /// This generation's id.
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// The sealed inverted index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// What requests retrieve through: the sealed layer, or sealed +
    /// delta.
    pub fn retriever(&self) -> &Arc<dyn Retriever> {
        &self.retriever
    }

    /// The sealed retrieval layer, without any delta (what a successor
    /// generation's delta wraps).
    pub fn sealed_retriever(&self) -> &Arc<dyn Retriever> {
        &self.sealed
    }

    /// The specialization model.
    pub fn model(&self) -> &Arc<SpecializationModel> {
        &self.model
    }

    /// The raw §4.1 store.
    pub fn store(&self) -> &Arc<SpecializationStore> {
        &self.store
    }

    /// The compiled inverted utility index.
    pub fn compiled(&self) -> &Arc<CompiledSpecStore> {
        &self.compiled
    }

    /// The compiled forward index (`None` ⇒ text-path surrogates).
    pub fn forward(&self) -> Option<&Arc<ForwardIndex>> {
        self.forward.as_ref()
    }

    /// The delta of freshly ingested, not-yet-merged documents.
    pub fn delta(&self) -> Option<&Arc<DeltaIndex>> {
        self.delta.as_ref()
    }

    /// The deploy-time precompiled [`UtilityScorer`] for a model entry's
    /// query text (`None` for queries outside the model).
    pub fn scorer_for(&self, query: &str) -> Option<&UtilityScorer> {
        self.scorers.get(query)
    }

    /// Total documents this generation serves: sealed + delta.
    pub fn num_docs(&self) -> usize {
        self.index.stats().num_docs as usize + self.delta.as_ref().map_or(0, |d| d.len())
    }

    /// The interned `(url, title)` presentation table, covering the
    /// sealed collection followed by the delta documents. Built lazily on
    /// first use; inject a shared one with
    /// [`set_presentation`](Self::set_presentation).
    pub fn presentation(&self) -> &PresentationTable {
        self.presentation.get_or_init(|| {
            let mut table: Vec<(Arc<str>, Arc<str>)> = self
                .index
                .store()
                .iter()
                .map(|d| (Arc::from(d.url.as_str()), Arc::from(d.title.as_str())))
                .collect();
            if let Some(delta) = &self.delta {
                table.extend(
                    delta
                        .docs()
                        .iter()
                        .map(|d| (Arc::from(d.url.as_str()), Arc::from(d.title.as_str()))),
                );
            }
            table.into()
        })
    }

    /// Inject a pre-interned presentation table (no-op if one is already
    /// set — `OnceLock` semantics).
    ///
    /// # Panics
    /// Panics when the table does not cover the generation's document
    /// space — a mismatched table would silently serve the wrong urls.
    pub fn set_presentation(&self, table: PresentationTable) {
        assert_eq!(
            table.len(),
            self.num_docs(),
            "presentation table must cover the document store"
        );
        let _ = self.presentation.set(table);
    }

    /// Internal-consistency check, run by
    /// [`GenerationHandle::publish`] before the pointer moves: every
    /// cross-artifact size relation a torn deploy could violate.
    pub fn validate(&self) -> Result<(), PublishError> {
        let sealed_docs = self.index.stats().num_docs;
        if let Some(forward) = &self.forward {
            if forward.num_docs() as u64 != sealed_docs {
                return Err(PublishError::Inconsistent(
                    "forward index does not cover the sealed document store",
                ));
            }
        }
        if let Some(delta) = &self.delta {
            if u64::from(delta.base_docs()) != sealed_docs {
                return Err(PublishError::Inconsistent(
                    "delta was built against a different sealed base",
                ));
            }
        }
        if let Some(table) = self.presentation.get() {
            if table.len() != self.num_docs() {
                return Err(PublishError::Inconsistent(
                    "presentation table does not cover the document store",
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation")
            .field("id", &self.id)
            .field("sealed_docs", &self.index.stats().num_docs)
            .field("delta_docs", &self.delta.as_ref().map_or(0, |d| d.len()))
            .field("forward", &self.forward.is_some())
            .finish()
    }
}

/// Copy a `OnceLock`'s settled value into a fresh cell (successor
/// generations share an already-interned presentation table instead of
/// re-interning it).
fn clone_once(cell: &OnceLock<PresentationTable>) -> OnceLock<PresentationTable> {
    let fresh = OnceLock::new();
    if let Some(v) = cell.get() {
        let _ = fresh.set(v.clone());
    }
    fresh
}

/// Why a candidate generation was refused publication. In every case the
/// previously published generation keeps serving, untouched.
#[derive(Debug)]
pub enum PublishError {
    /// A serialized artifact failed its checked decode (bad magic,
    /// version mismatch, truncation, corruption) — the artifact never
    /// became a `Generation` at all.
    Decode(DecodeError),
    /// The candidate's id does not advance the published id: a replayed
    /// or out-of-order deploy.
    Stale {
        /// The refused candidate's id.
        candidate: GenerationId,
        /// The id still serving.
        current: GenerationId,
    },
    /// The candidate's artifacts disagree with each other (sizes,
    /// coverage) — a torn deploy caught before it could serve.
    Inconsistent(&'static str),
    /// An injected chaos fault at a `swap.*` failpoint aborted the
    /// publish (modeling a poisoned artifact pipeline).
    Fault(&'static str),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Decode(e) => write!(f, "artifact decode failed: {e}"),
            PublishError::Stale { candidate, current } => write!(
                f,
                "stale generation {candidate} refused: generation {current} is serving"
            ),
            PublishError::Inconsistent(what) => write!(f, "inconsistent generation: {what}"),
            PublishError::Fault(site) => write!(f, "publish aborted by fault at {site}"),
        }
    }
}

impl std::error::Error for PublishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublishError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for PublishError {
    fn from(e: DecodeError) -> Self {
        PublishError::Decode(e)
    }
}

/// The atomic epoch-swap cell (see the [module docs](self) for the
/// design): requests [`pin`](Self::pin) the current generation, deploys
/// [`publish`](Self::publish) a validated successor.
pub struct GenerationHandle {
    current: RwLock<Arc<Generation>>,
    /// Lock-free mirror of the published id, for paths that need the id
    /// without pinning (degraded replies, metrics snapshots).
    latest: AtomicU64,
}

impl GenerationHandle {
    /// A handle serving `initial`.
    pub fn new(initial: Arc<Generation>) -> Self {
        let id = initial.id();
        GenerationHandle {
            current: RwLock::new(initial),
            latest: AtomicU64::new(id),
        }
    }

    /// Pin the current generation: one shared-mode pointer read plus one
    /// `Arc` clone, nanoseconds. The caller's whole request runs against
    /// the returned bundle, immune to concurrent publishes.
    pub fn pin(&self) -> Arc<Generation> {
        self.current.read().clone()
    }

    /// The currently published id (lock-free).
    pub fn current_id(&self) -> GenerationId {
        self.latest.load(Ordering::Acquire)
    }

    /// Validate-then-publish `candidate`. On success the next
    /// [`pin`](Self::pin) returns the new generation; in-flight requests
    /// finish on whatever they pinned. On any error the old generation
    /// keeps serving untouched.
    ///
    /// Fires the `swap.validate` and `swap.publish` chaos failpoints; a
    /// `Drop`/`Corrupt` fault at either aborts the publish with
    /// [`PublishError::Fault`], and delays land *before* the exclusive
    /// pointer store so they never block concurrent pins.
    pub fn publish(&self, candidate: Arc<Generation>) -> Result<GenerationId, PublishError> {
        if fault_aborts(serpdiv_chaos::failpoint("swap.validate")) {
            return Err(PublishError::Fault("swap.validate"));
        }
        candidate.validate()?;
        // Cheap early monotonicity check (racy, re-checked under the
        // lock): refuse obviously stale deploys before paying the
        // publish failpoint's potential delay.
        let current = self.current_id();
        if candidate.id() <= current {
            return Err(PublishError::Stale {
                candidate: candidate.id(),
                current,
            });
        }
        if fault_aborts(serpdiv_chaos::failpoint("swap.publish")) {
            return Err(PublishError::Fault("swap.publish"));
        }
        let id = candidate.id();
        let mut slot = self.current.write();
        if id <= slot.id() {
            // A concurrent publisher won the race with a newer id.
            return Err(PublishError::Stale {
                candidate: id,
                current: slot.id(),
            });
        }
        *slot = candidate;
        self.latest.store(id, Ordering::Release);
        Ok(id)
    }
}

impl std::fmt::Debug for GenerationHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationHandle")
            .field("current_id", &self.current_id())
            .finish()
    }
}

/// Interpret a `swap.*` failpoint's verdict: `Drop`/`Corrupt` abort the
/// publish; `Stall` sleeps here (a slow artifact pipeline) and continues
/// — `Delay` already slept inside the failpoint.
fn fault_aborts(action: serpdiv_chaos::SiteAction) -> bool {
    match action {
        serpdiv_chaos::SiteAction::None => false,
        serpdiv_chaos::SiteAction::Stall(d) => {
            std::thread::sleep(d);
            false
        }
        serpdiv_chaos::SiteAction::Drop | serpdiv_chaos::SiteAction::Corrupt => true,
    }
}

/// Serialized artifacts of a candidate generation — what a deploy
/// pipeline ships to a running engine. Decoded and validated by
/// [`SearchEngine::publish_artifacts`](crate::SearchEngine::publish_artifacts);
/// a corrupt or version-mismatched buffer is a counted rejection, never a
/// crash.
#[derive(Debug, Clone)]
pub struct GenerationArtifacts {
    /// The id the decoded generation will carry (must advance the
    /// published id).
    pub id: GenerationId,
    /// `InvertedIndex::to_bytes` image.
    pub index: Vec<u8>,
    /// `ForwardIndex::to_bytes` image (`None` ⇒ text-path surrogates).
    pub forward: Option<Vec<u8>>,
    /// `CompiledSpecStore::to_bytes` image.
    pub compiled: Vec<u8>,
}

/// The background delta merger: a thread that watches the published
/// generation and, whenever its delta has grown past a threshold, seals
/// it with [`merge_delta`](crate::SearchEngine::merge_delta) — producing
/// a merged index bit-identical to a from-scratch build — and publishes
/// the successor. Dropping the handle stops and joins the thread.
pub struct BackgroundMerger {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundMerger {
    pub(crate) fn spawn(
        engine: Arc<crate::engine::SearchEngine>,
        threshold: usize,
        poll: std::time::Duration,
    ) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("serpdiv-merger".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let delta_len = engine.generation().delta().map_or(0, |d| d.len());
                    if delta_len >= threshold.max(1) {
                        // A lost publish race or a chaos-injected
                        // rejection is not fatal: the delta is still
                        // served, and the next poll retries.
                        let _ = engine.merge_delta();
                    }
                    std::thread::sleep(poll);
                }
            })
            .expect("failed to spawn background merger");
        BackgroundMerger {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for BackgroundMerger {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
