//! Log-bucketed latency histograms for tail attribution.
//!
//! The flat per-stage microsecond sums in [`ServeMetrics`] answer "where
//! does the *mean* go" but are blind to the tail: a 28 ms p99 on a
//! 0.15 ms p50 workload moves a mean by ~1 ms and is invisible in a sum.
//! [`LatencyHistogram`] keeps the full latency *distribution* per stage at
//! fixed memory cost, so percentiles can be read per stage (detect /
//! retrieve / surrogate / utility / select), for queue wait, and for the
//! end-to-end total — pinning a tail to a stage instead of inferring it.
//!
//! Bucketing is HDR-style: exact 1 µs buckets below [`LINEAR_BUCKETS`] µs,
//! then 8 sub-buckets per power-of-two octave, which bounds the relative
//! quantization error of any reported percentile at 12.5% while covering
//! the entire `u64` microsecond range in [`NUM_BUCKETS`] (≈ 4 KiB of)
//! counters. Recording is a single relaxed atomic increment plus an atomic
//! max — wait-free, no locks on the serving path — and the exact observed
//! maximum is tracked separately so the top percentile can never be
//! *over*-reported past a real sample.
//!
//! [`ServeMetrics`]: crate::ServeMetrics

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this many microseconds get exact 1 µs-wide buckets.
const LINEAR_BUCKETS: u64 = 16;
/// Sub-buckets per power-of-two octave above the linear range (8 ⇒ each
/// bucket is 1/8 of its octave wide ⇒ ≤ 12.5% quantization error).
const SUB_BUCKETS: u64 = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;
/// First octave above the linear range: values in `[16, 32)` are octave 4.
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: 16 linear + 8 per octave for octaves 4..=63.
pub const NUM_BUCKETS: usize = (LINEAR_BUCKETS + (64 - FIRST_OCTAVE as u64) * SUB_BUCKETS) as usize;

/// Bucket index for a microsecond value (total function over `u64`).
#[inline]
fn bucket_index(us: u64) -> usize {
    if us < LINEAR_BUCKETS {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros(); // >= FIRST_OCTAVE
    let sub = (us >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
    (LINEAR_BUCKETS + (octave - FIRST_OCTAVE) as u64 * SUB_BUCKETS + sub) as usize
}

/// Largest microsecond value falling into `bucket` (its inclusive upper
/// edge) — what [`LatencyHistogram::percentile_us`] reports, so
/// percentiles are conservative (never below the true order statistic).
fn bucket_upper_edge(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < LINEAR_BUCKETS {
        return b;
    }
    let octave = FIRST_OCTAVE + ((b - LINEAR_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = (b - LINEAR_BUCKETS) % SUB_BUCKETS;
    let width = 1u64 << (octave - SUB_BITS);
    let lower = (1u64 << octave) + sub * width;
    lower + (width - 1)
}

/// A fixed-size, wait-free, log-bucketed latency histogram (microseconds).
///
/// See the [module docs](self) for the bucketing scheme. All updates are
/// relaxed atomics: counts are monotone and only read for reporting, so a
/// snapshot race can momentarily under-count but never corrupt.
///
/// ```
/// use serpdiv_serve::LatencyHistogram;
/// let h = LatencyHistogram::default();
/// for us in [10, 12, 100, 30_000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile_us(50.0), 12); // exact below 16 µs
/// assert_eq!(h.max_us(), 30_000); // the max is always exact
/// assert!(h.percentile_us(99.0) >= 30_000);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation, in microseconds. Wait-free: three
    /// relaxed atomic updates on the serving path (the observation count
    /// is derived from the buckets at read time, not tracked separately).
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        // Plain wrapping add, not a saturating CAS loop: overflowing a u64
        // of summed microseconds takes ~585k years of recorded latency, and
        // this runs on the serving path for every request.
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // Guarded max: `fetch_max` is a locked CAS loop even when the max
        // is unchanged, which is the steady state — a relaxed load makes
        // the common case lock-free (the race just retries via fetch_max).
        if us > self.max_us.load(Ordering::Relaxed) {
            self.max_us.fetch_max(us, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations (a read-time sum over the bucket
    /// counters — reporting pays, the serving path doesn't).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Exact maximum observation, microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile (`0.0..=100.0`), in microseconds.
    ///
    /// Reports the inclusive upper edge of the bucket holding the p-th
    /// order statistic — exact below 16 µs, within 12.5% above — clamped
    /// to the exact observed [`max_us`](Self::max_us) so quantization can
    /// never push a percentile past a real sample. Returns 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        // Rank of the order statistic, 1-based: ceil(p/100 * total),
        // clamped into [1, total] (matches the sorted-vector convention
        // used by serve_bench's exact percentiles).
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max_us());
            }
        }
        self.max_us()
    }

    /// Condense into a plain-old-data [`LatencyStats`] for snapshots.
    pub fn stats(&self) -> LatencyStats {
        let count = self.count();
        LatencyStats {
            count,
            p50_us: self.percentile_us(50.0),
            p95_us: self.percentile_us(95.0),
            p99_us: self.percentile_us(99.0),
            max_us: self.max_us(),
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us() as f64 / count as f64
            },
        }
    }
}

/// Point-in-time percentile summary of one [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Observations recorded.
    pub count: u64,
    /// Median, microseconds (bucket upper edge; exact below 16 µs).
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Exact maximum, microseconds.
    pub max_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for us in 0..LINEAR_BUCKETS {
            assert_eq!(bucket_index(us), us as usize);
            assert_eq!(bucket_upper_edge(us as usize), us);
        }
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Edges and interior points of every octave map to monotonically
        // non-decreasing buckets whose upper edge is >= the value.
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..63 {
            let base = 1u64 << shift;
            values.extend([base, base + 1, base + base / 2, base + (base - 1)]);
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for &us in &values {
            let b = bucket_index(us);
            assert!(b >= last, "bucket order broke at {us}");
            assert!(b < NUM_BUCKETS);
            assert!(
                bucket_upper_edge(b) >= us,
                "upper edge {} < value {us}",
                bucket_upper_edge(b)
            );
            last = b;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Above the linear range the reported edge overshoots by < 12.5%.
        for us in [20u64, 100, 1000, 12_345, 1_000_000, 123_456_789] {
            let edge = bucket_upper_edge(bucket_index(us));
            assert!(edge >= us);
            assert!(
                (edge - us) as f64 <= us as f64 * 0.125,
                "edge {edge} overshoots {us}"
            );
        }
    }

    #[test]
    fn percentiles_match_exact_on_small_samples() {
        let h = LatencyHistogram::default();
        for us in 1..=10u64 {
            h.record(us); // all in the exact linear range
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.percentile_us(50.0), 5);
        assert_eq!(h.percentile_us(100.0), 10);
        assert_eq!(h.percentile_us(0.0), 1);
        assert_eq!(h.max_us(), 10);
        assert!((h.stats().mean_us - 5.5).abs() < 1e-12);
    }

    #[test]
    fn tail_is_conservative_but_clamped_to_max() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(28_000);
        let p99 = h.percentile_us(99.0);
        // p99 lands in the 100 µs bucket: reported edge covers 100 but
        // stays within the 12.5% bound.
        assert!((100..=112).contains(&p99), "p99 {p99}");
        // p100 is the straggler, clamped to the exact max.
        assert_eq!(h.percentile_us(100.0), 28_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(50.0), 0);
        let s = h.stats();
        assert_eq!((s.count, s.p99_us, s.max_us), (0, 0, 0));
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = LatencyHistogram::default();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max_us(), 30_999);
    }
}
