//! # serpdiv-serve — concurrent diversified-search serving
//!
//! The paper's thesis (Capannini et al., VLDB 2011) is that OptSelect
//! makes SERP diversification cheap enough to run *inside* the
//! query-serving loop, provided the expensive knowledge is precomputed:
//! the specialization model mined offline from the query log (§3) and the
//! per-specialization result surrogates of §4.1. This crate is that
//! serving loop.
//!
//! ## Layer diagram
//!
//! ```text
//!                         ┌──────────────────────────┐
//!  requests ─────────────▶│  WorkerPool (N threads)  │
//!                         └───────────┬──────────────┘
//!                                     ▼
//!                         ┌──────────────────────────┐
//!                         │  serve::SearchEngine     │
//!                         │  ┌────────────────────┐  │
//!                         │  │ ShardedResultCache │  │  (query,k,algo) → SERP
//!                         │  └────────────────────┘  │
//!                         │   stage chain (driver):  │
//!                         │   Detect → Retrieve →    │
//!                         │   Surrogate → Utility →  │
//!                         │   Select                 │
//!                         └───────────┬──────────────┘
//!          shared, immutable, Arc'd   ▼
//!   ┌───────────────────────┬─────────────────┬──────────────────────┐
//!   │ dyn Retriever         │ Specialization- │ SpecializationStore  │
//!   │  InvertedIndex (1     │ Model (mining)  │ + CompiledSpecStore  │
//!   │  shard) or Sharded-   │                 │ (§4.1, core crate)   │
//!   │  Index (scatter-      │                 │                      │
//!   │  gather over N)       │                 │                      │
//!   └───────────────────────┴─────────────────┴──────────────────────┘
//! ```
//!
//! ## Request lifecycle
//!
//! The cached fast path probes the sharded LRU result cache under
//! `(query, k, algorithm)` — with a borrowed key, no allocation — and
//! returns the shared SERP on a hit. The uncached path is a chain of
//! [`Stage`] units driven by a thin loop (see [`stages`]):
//!
//! 1. **detect** ([`stages::DetectStage`]) — look the query up in the
//!    mined [`SpecializationModel`](serpdiv_mining::SpecializationModel)
//!    (Algorithm 1 ran offline; online ambiguity detection is one hash
//!    lookup). A miss means "not ambiguous" and the DPH baseline is served
//!    unchanged;
//! 2. **retrieve** ([`stages::RetrieveStage`]) — top-`n` candidates
//!    through the deployed [`Retriever`](serpdiv_index::Retriever): the
//!    plain [`InvertedIndex`](serpdiv_index::InvertedIndex) or a
//!    [`ShardedIndex`](serpdiv_index::ShardedIndex) scoring document
//!    partitions in parallel with a bit-identical scatter-gather merge
//!    ([`EngineConfig::index_shards`]) — through the shared persistent
//!    [`ScoringExecutor`](serpdiv_index::ScoringExecutor) when
//!    [`EngineConfig::executor_threads`] deploys one, so scatter
//!    parallelism composes with the worker pool's request parallelism
//!    instead of spawning scoped threads per query;
//! 3. **surrogate** ([`stages::SurrogateStage`]) — snippet surrogate
//!    vectors for the candidates, memoized per `(doc, query-terms)` in the
//!    sharded [`SurrogateCache`];
//! 4. **utility** ([`stages::UtilityStage`]) — the `Ũ(d|R_q′)` matrix
//!    (Definition 2), one sparse term-at-a-time accumulation per candidate
//!    against the [`CompiledSpecStore`](serpdiv_core::CompiledSpecStore) —
//!    the offline-compiled inverted form of the §4.1
//!    [`SpecializationStore`](serpdiv_core::SpecializationStore);
//! 5. **select** ([`stages::SelectStage`]) — the per-request choice of
//!    diversifier (OptSelect / IA-Select / xQuAD / MMR, pre-built
//!    [`Diversifier`](serpdiv_core::Diversifier) trait objects) re-ranks
//!    the page — unless the per-request [`Budget`]
//!    ([`EngineConfig::deadline_us`]) is exhausted, in which case the
//!    request degrades to the baseline ranking (`"DPH (degraded)"`).
//!
//! ## Overload protection
//!
//! The stack degrades *predictably* instead of queueing or hanging:
//!
//! * **Deadline budgets** — the driver checks the request's [`Budget`] at
//!   every stage edge and serves the baseline prefix the moment it
//!   exhausts; the remaining budget also clamps a distributed retriever's
//!   per-shard wire deadlines.
//! * **Admission control** — [`WorkerPool::with_admission`] bounds the
//!   queue ([`AdmissionPolicy`]): overflow is shed in O(µs) with the
//!   distinct [`Degradation::Shed`] class instead of convoying.
//! * **Panic containment** — a worker that panics mid-request (scoring
//!   bug, injected chaos) answers [`Degradation::Internal`] and keeps
//!   serving.
//!
//! See [`Degradation`] for the full degradation ladder and the
//! `serpdiv-chaos` crate (plus `tests/chaos_soak.rs` at the workspace
//! root) for the failpoints that prove these properties under injected
//! faults. [`AdmissionPolicy::deadline_aware`] extends the ladder with
//! predictive shedding: a request class whose service-time EWMA already
//! overruns the engine's budget is refused at enqueue.
//!
//! ## Generations & live updates
//!
//! All of the read-only state above is bundled into an epoch-published
//! [`Generation`]: each request pins the current generation once and
//! runs its whole pipeline against that pin, so publishing a new index /
//! model / compiled store ([`SearchEngine::publish`],
//! [`SearchEngine::publish_artifacts`]) swaps a pointer without
//! dropping, stalling, or tearing a single in-flight request. Fresh
//! documents stream in through [`SearchEngine::ingest`]
//! ([`DeltaIndex`](serpdiv_index::DeltaIndex) searched alongside the
//! sealed shards) and are sealed by [`SearchEngine::merge_delta`] or the
//! [`BackgroundMerger`] into an index bit-identical to a from-scratch
//! build. See the [`generation`] module docs for the full design and the
//! validate-then-publish contract.
//!
//! Every stage is timed per request ([`StageTimings`]) and aggregated in
//! the engine's [`metrics`](SearchEngine::metrics); the cache exports
//! hit/miss counters and degradations are counted separately. An
//! optional [`SloMonitor`] ([`EngineConfig::slo`]) turns the request
//! stream into burn-rate alerts ([`MetricsSnapshot::slo_burn_alerts`]).
//! `serve_bench` (in `crates/bench`) replays a synthetic query-log session
//! stream against this engine at configurable concurrency and shard
//! counts and reports QPS and latency percentiles per algorithm.

pub mod budget;
pub mod cache;
pub mod engine;
pub mod generation;
pub mod histogram;
pub mod lru;
pub mod metrics;
pub mod pool;
pub mod request;
pub mod slo;
pub mod stages;
pub mod surrogates;

pub use budget::Budget;
pub use cache::{CacheKey, CacheStats, CachedSerp, ShardedResultCache};
pub use engine::{EngineConfig, PresentationTable, SearchEngine};
pub use generation::{
    BackgroundMerger, Generation, GenerationArtifacts, GenerationHandle, GenerationId, PublishError,
};
pub use histogram::{LatencyHistogram, LatencyStats};
pub use lru::LruCache;
pub use metrics::{Degradation, MetricsSnapshot, ServeMetrics, StageLatencies};
pub use pool::{AdmissionPolicy, WorkerPool};
pub use request::{
    QueryRequest, RankedResult, SearchResponse, StageTimings, LABEL_INTERNAL, LABEL_SHED,
};
pub use slo::{SloConfig, SloMonitor};
pub use stages::{
    default_stage_chain, DetectStage, PipelineContext, RetrieveStage, SelectStage, Stage,
    StageKind, StageOutcome, SurrogateStage, UtilityStage,
};
pub use surrogates::{SurrogateCache, SurrogateKey};

// The per-request algorithm selector, re-exported so serving callers don't
// need a direct `serpdiv-core` dependency.
pub use serpdiv_core::AlgorithmKind;

// The persistent scatter-scoring pool (and the sharded retriever it
// backs), re-exported so deployments can build ONE executor and share it
// across every engine and the request `WorkerPool` without a direct
// `serpdiv-index` dependency.
pub use serpdiv_index::{ScoringExecutor, ShardedIndex};
