//! # serpdiv-serve — concurrent diversified-search serving
//!
//! The paper's thesis (Capannini et al., VLDB 2011) is that OptSelect
//! makes SERP diversification cheap enough to run *inside* the
//! query-serving loop, provided the expensive knowledge is precomputed:
//! the specialization model mined offline from the query log (§3) and the
//! per-specialization result surrogates of §4.1. This crate is that
//! serving loop.
//!
//! ## Layer diagram
//!
//! ```text
//!                         ┌──────────────────────────┐
//!  requests ─────────────▶│  WorkerPool (N threads)  │
//!                         └───────────┬──────────────┘
//!                                     ▼
//!                         ┌──────────────────────────┐
//!                         │  serve::SearchEngine     │
//!                         │  ┌────────────────────┐  │
//!                         │  │ ShardedResultCache │  │  (query,k,algo) → SERP
//!                         │  └────────────────────┘  │
//!                         └───────────┬──────────────┘
//!          shared, immutable, Arc'd   ▼
//!   ┌───────────────┬─────────────────┬────────────────────────┐
//!   │ InvertedIndex │ Specialization- │ SpecializationStore    │
//!   │ (index crate) │ Model (mining)  │ (§4.1, core crate)     │
//!   └───────────────┴─────────────────┴────────────────────────┘
//! ```
//!
//! ## Request lifecycle
//!
//! 1. **cache** — probe the sharded LRU result cache under the key
//!    `(query, k, algorithm)`; a hit returns the SERP immediately;
//! 2. **detect** — look the query up in the mined
//!    [`SpecializationModel`](serpdiv_mining::SpecializationModel)
//!    (Algorithm 1 ran offline; online ambiguity detection is one hash
//!    lookup). A miss means "not ambiguous" and the DPH baseline is served
//!    unchanged;
//! 3. **retrieve** — DPH top-`n` candidates from the shared
//!    [`InvertedIndex`](serpdiv_index::InvertedIndex);
//! 4. **surrogate** — snippet surrogate vectors for the candidates,
//!    memoized per `(doc, query-terms)` in the sharded [`SurrogateCache`];
//! 5. **utility** — the `Ũ(d|R_q′)` matrix (Definition 2), one sparse
//!    term-at-a-time accumulation per candidate against the
//!    [`CompiledSpecStore`](serpdiv_core::CompiledSpecStore) — the
//!    offline-compiled inverted form of the §4.1
//!    [`SpecializationStore`](serpdiv_core::SpecializationStore);
//! 6. **select** — the per-request choice of diversifier (OptSelect /
//!    IA-Select / xQuAD / MMR) re-ranks the page.
//!
//! Every stage is timed per request ([`StageTimings`]) and aggregated in
//! the engine's [`metrics`](SearchEngine::metrics); the cache exports
//! hit/miss counters. `serve_bench` (in `crates/bench`) replays a
//! synthetic query-log session stream against this engine at configurable
//! concurrency and reports QPS and latency percentiles per algorithm.

pub mod cache;
pub mod engine;
pub mod lru;
pub mod metrics;
pub mod pool;
pub mod request;
pub mod surrogates;

pub use cache::{CacheKey, CacheStats, CachedSerp, ShardedResultCache};
pub use engine::{EngineConfig, SearchEngine};
pub use lru::LruCache;
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use pool::WorkerPool;
pub use request::{QueryRequest, RankedResult, SearchResponse, StageTimings};
pub use surrogates::{SurrogateCache, SurrogateKey};

// The per-request algorithm selector, re-exported so serving callers don't
// need a direct `serpdiv-core` dependency.
pub use serpdiv_core::AlgorithmKind;
