//! Serving-engine observability: lock-free request and stage counters.

use crate::request::StageTimings;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters updated by every request (relaxed atomics — the
/// counters are monotone and read only for reporting).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    diversified: AtomicU64,
    passthrough: AtomicU64,
    degraded: AtomicU64,
    detect_us: AtomicU64,
    retrieve_us: AtomicU64,
    surrogate_us: AtomicU64,
    utility_us: AtomicU64,
    select_us: AtomicU64,
    total_us: AtomicU64,
}

/// A point-in-time copy of [`ServeMetrics`] with derived averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests served (hits + computed).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Computed requests where diversification ran.
    pub diversified: u64,
    /// Computed requests served as baseline passthrough.
    pub passthrough: u64,
    /// Passthrough requests caused by an exhausted select-stage budget
    /// (a subset of `passthrough`).
    pub degraded: u64,
    /// Cumulative per-stage microseconds (computed requests only).
    pub stage_sums: StageTimings,
    /// Mean end-to-end service time per request, microseconds.
    pub mean_total_us: f64,
}

impl ServeMetrics {
    /// Record one served request.
    pub fn record(
        &self,
        cache_hit: bool,
        diversified: bool,
        degraded: bool,
        timings: StageTimings,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else if diversified {
            self.diversified.fetch_add(1, Ordering::Relaxed);
        } else {
            self.passthrough.fetch_add(1, Ordering::Relaxed);
            if degraded {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.detect_us
            .fetch_add(timings.detect_us, Ordering::Relaxed);
        self.retrieve_us
            .fetch_add(timings.retrieve_us, Ordering::Relaxed);
        self.surrogate_us
            .fetch_add(timings.surrogate_us, Ordering::Relaxed);
        self.utility_us
            .fetch_add(timings.utility_us, Ordering::Relaxed);
        self.select_us
            .fetch_add(timings.select_us, Ordering::Relaxed);
        self.total_us.fetch_add(timings.total_us, Ordering::Relaxed);
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let total_us = self.total_us.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            diversified: self.diversified.load(Ordering::Relaxed),
            passthrough: self.passthrough.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            stage_sums: StageTimings {
                detect_us: self.detect_us.load(Ordering::Relaxed),
                retrieve_us: self.retrieve_us.load(Ordering::Relaxed),
                surrogate_us: self.surrogate_us.load(Ordering::Relaxed),
                utility_us: self.utility_us.load(Ordering::Relaxed),
                select_us: self.select_us.load(Ordering::Relaxed),
                total_us,
            },
            mean_total_us: if requests == 0 {
                0.0
            } else {
                total_us as f64 / requests as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let m = ServeMetrics::default();
        m.record(
            false,
            true,
            false,
            StageTimings {
                detect_us: 1,
                retrieve_us: 2,
                surrogate_us: 5,
                utility_us: 3,
                select_us: 4,
                total_us: 11,
            },
        );
        m.record(
            true,
            true,
            false,
            StageTimings {
                total_us: 1,
                ..Default::default()
            },
        );
        m.record(
            false,
            false,
            true,
            StageTimings {
                total_us: 3,
                ..Default::default()
            },
        );
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.diversified, 1);
        assert_eq!(s.passthrough, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.stage_sums.detect_us, 1);
        assert_eq!(s.stage_sums.surrogate_us, 5);
        assert_eq!(s.stage_sums.total_us, 15);
        assert!((s.mean_total_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = ServeMetrics::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record(
                            false,
                            true,
                            false,
                            StageTimings {
                                total_us: 2,
                                ..Default::default()
                            },
                        );
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.requests, 8000);
        assert_eq!(s.stage_sums.total_us, 16_000);
    }
}
