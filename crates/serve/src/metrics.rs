//! Serving-engine observability: lock-free request and stage counters,
//! plus per-stage log-bucketed latency histograms for tail attribution
//! (see [`crate::histogram`]).

use crate::histogram::{LatencyHistogram, LatencyStats};
use crate::request::StageTimings;
use crate::slo::{SloConfig, SloMonitor};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a request was not served its full diversified page — the rungs of
/// the serving stack's **degradation ladder**, from cheapest to most
/// severe.
///
/// Each class answers a different operational question — an exhausted
/// per-request budget means the *request* ran long, a lost shard means
/// the *fleet* is unhealthy, a shed request means the *pool* is
/// saturated, an internal error means a *worker* contained a panic — so
/// they are counted (and labeled on the response) separately. Degraded
/// responses of every class are **never cached**: they are an accident of
/// one request, not the canonical SERP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Not degraded.
    None,
    /// The request's compute [`Budget`](crate::Budget) was exhausted
    /// ([`EngineConfig::deadline_us`](crate::EngineConfig::deadline_us));
    /// the page is the baseline ranking prefix, labeled
    /// `"DPH (degraded)"`.
    Deadline,
    /// Retrieval lost at least one index shard (a fleet worker timed out
    /// or died) and the page was built from a partial gather; labeled
    /// `"DPH (degraded: shard loss)"`.
    ShardLoss,
    /// Admission control refused the request before any engine work: the
    /// worker-pool queue was over its bound
    /// ([`AdmissionPolicy`](crate::AdmissionPolicy)). The page is empty,
    /// labeled [`LABEL_SHED`](crate::request::LABEL_SHED), and the
    /// rejection costs O(µs), not a deadline.
    Shed,
    /// A serving worker contained a panic while computing this request
    /// (a scoring bug, or an injected chaos fault). The page is empty,
    /// labeled [`LABEL_INTERNAL`](crate::request::LABEL_INTERNAL); the
    /// worker itself survives and keeps serving.
    Internal,
}

/// Cumulative counters updated by every request (relaxed atomics — the
/// counters are monotone and read only for reporting).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    diversified: AtomicU64,
    passthrough: AtomicU64,
    degraded: AtomicU64,
    degraded_shard_loss: AtomicU64,
    shed: AtomicU64,
    internal_errors: AtomicU64,
    queue_waits: AtomicU64,
    queue_wait_us: AtomicU64,
    /// Generations successfully published to this engine (hot swaps).
    swaps: AtomicU64,
    /// Candidate generations refused by validate-then-publish (decode
    /// failure, stale id, inconsistent artifacts, injected fault).
    swap_rejected: AtomicU64,
    /// Cache entries (result SERPs + surrogates) carried into a freshly
    /// published generation because their bytes were proven unchanged.
    carried_over: AtomicU64,
    /// Old-generation cache entries a swap could *not* prove unchanged
    /// (left behind to age out of the LRU).
    carry_skipped: AtomicU64,
    /// Hedged re-dispatches: batch requests duplicated onto the pool
    /// after overrunning their class's expected service time
    /// ([`AdmissionPolicy::hedge_factor_pct`](crate::AdmissionPolicy::hedge_factor_pct));
    /// first completion wins.
    hedges: AtomicU64,
    detect_us: AtomicU64,
    retrieve_us: AtomicU64,
    surrogate_us: AtomicU64,
    utility_us: AtomicU64,
    select_us: AtomicU64,
    total_us: AtomicU64,
    /// Per-stage latency distributions over *computed* requests' non-zero
    /// stage samples (cache hits and shed/internal refusals would flood
    /// the stage medians with zeros, and a skipped stage carries no
    /// attribution signal), keyed like [`StageLatencies`].
    hist_detect: LatencyHistogram,
    hist_retrieve: LatencyHistogram,
    hist_surrogate: LatencyHistogram,
    hist_utility: LatencyHistogram,
    hist_select: LatencyHistogram,
    /// Queue-wait distribution over queued requests (shed included — the
    /// wait is real even when the answer is a refusal).
    hist_queue_wait: LatencyHistogram,
    /// End-to-end service-time distribution over **all** requests (cache
    /// hits included: this is the latency a client actually observed).
    hist_total: LatencyHistogram,
    /// Burn-rate SLO evaluator (`None` ⇒ no SLO configured); fed one
    /// outcome per recorded request.
    slo: Option<SloMonitor>,
}

/// Latency percentile summaries per pipeline stage, from the log-bucketed
/// histograms (computed requests only, except `queue_wait` — queued
/// requests — and `total` — all requests).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageLatencies {
    /// Ambiguity-detection stage.
    pub detect: LatencyStats,
    /// Baseline-retrieval stage.
    pub retrieve: LatencyStats,
    /// Surrogate-construction stage.
    pub surrogate: LatencyStats,
    /// Utility-matrix stage (Definition 2 scoring).
    pub utility: LatencyStats,
    /// Diversified-selection stage.
    pub select: LatencyStats,
    /// Worker-pool queue wait (enqueue → worker pickup).
    pub queue_wait: LatencyStats,
    /// End-to-end service time.
    pub total: LatencyStats,
}

/// A point-in-time copy of [`ServeMetrics`] with derived averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests served (hits + computed).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Computed requests where diversification ran.
    pub diversified: u64,
    /// Computed requests served as baseline passthrough.
    pub passthrough: u64,
    /// Passthrough requests caused by an exhausted select-stage budget
    /// (a subset of `passthrough`).
    pub degraded: u64,
    /// Passthrough requests caused by a lost index shard — a fleet
    /// worker that timed out or died mid-gather (a subset of
    /// `passthrough`, disjoint from `degraded`).
    pub degraded_shard_loss: u64,
    /// Requests refused by worker-pool admission control before any
    /// engine work ([`Degradation::Shed`]). Disjoint from every class
    /// above: `requests = cache_hits + diversified + passthrough + shed
    /// + internal_errors`.
    pub shed: u64,
    /// Requests whose serving worker contained a panic
    /// ([`Degradation::Internal`]). Disjoint from every other class.
    pub internal_errors: u64,
    /// The [`GenerationId`](crate::GenerationId) currently serving (0
    /// when the snapshot was taken straight from a [`ServeMetrics`] with
    /// no engine attached).
    pub generation: u64,
    /// Generations successfully hot-swapped into this engine.
    pub swaps: u64,
    /// Candidate generations refused by validate-then-publish while the
    /// old generation kept serving.
    pub swap_rejected: u64,
    /// Cache entries (result SERPs + surrogates) carried across swaps
    /// into the new generation — the warm-start that keeps a republish
    /// from serving a cold cache.
    pub carried_over: u64,
    /// Old-generation cache entries swaps could not prove byte-unchanged
    /// (skipped, left to age out of the LRU).
    pub carry_skipped: u64,
    /// Requests the pool hedged with a duplicate dispatch after they
    /// overran their class's expected service time (the duplicate races
    /// the straggler; first completion wins, the loser is discarded).
    pub hedges: u64,
    /// Cumulative SLO burn-rate alert firings (rising edges; see
    /// [`SloMonitor`](crate::SloMonitor)). 0 when no SLO is configured.
    pub slo_burn_alerts: u64,
    /// Whether the SLO burn-rate alert is currently latched.
    pub slo_alert_active: bool,
    /// Requests that passed through the worker-pool queue (the
    /// denominator of `mean_queue_wait_us`).
    pub queue_waits: u64,
    /// Mean worker-pool queue wait per queued request, microseconds.
    pub mean_queue_wait_us: f64,
    /// Cumulative per-stage microseconds (computed requests only;
    /// `queue_wait_us` sums over queued requests).
    pub stage_sums: StageTimings,
    /// Mean end-to-end service time per request, microseconds.
    pub mean_total_us: f64,
    /// Per-stage latency percentiles from the log-bucketed histograms —
    /// the tail-attribution view: a p99 that dwarfs every stage's p99
    /// happened *between* stages (scheduler preemption, queue), not in
    /// one.
    pub latency: StageLatencies,
}

impl ServeMetrics {
    /// Metrics that also hold the engine to an SLO: every recorded
    /// request feeds the burn-rate monitor (`None` keeps the plain
    /// counters only).
    pub fn with_slo(slo: Option<SloConfig>) -> Self {
        ServeMetrics {
            slo: slo.map(SloMonitor::new),
            ..ServeMetrics::default()
        }
    }

    /// The burn-rate monitor, when an SLO is configured.
    pub fn slo(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// Count one successful generation publish (hot swap).
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one refused generation publish.
    pub fn record_swap_rejected(&self) {
        self.swap_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count the outcome of one swap's cache carry-over pass.
    pub fn record_carry(&self, carried: u64, skipped: u64) {
        self.carried_over.fetch_add(carried, Ordering::Relaxed);
        self.carry_skipped.fetch_add(skipped, Ordering::Relaxed);
    }

    /// Count one hedged re-dispatch of a straggling request.
    pub fn record_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served request.
    pub fn record(
        &self,
        cache_hit: bool,
        diversified: bool,
        degradation: Degradation,
        timings: StageTimings,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else if diversified {
            self.diversified.fetch_add(1, Ordering::Relaxed);
        } else {
            // Shed and internal-error responses never produced a page, so
            // they are counted apart from (not inside) `passthrough`; the
            // five leaf classes always sum to `requests`.
            match degradation {
                Degradation::Shed => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
                Degradation::Internal => {
                    self.internal_errors.fetch_add(1, Ordering::Relaxed);
                }
                Degradation::None => {
                    self.passthrough.fetch_add(1, Ordering::Relaxed);
                }
                Degradation::Deadline => {
                    self.passthrough.fetch_add(1, Ordering::Relaxed);
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                }
                Degradation::ShardLoss => {
                    self.passthrough.fetch_add(1, Ordering::Relaxed);
                    self.degraded_shard_loss.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Timing sums saturate instead of wrapping: a debug-build
        // overflow panic inside metrics would take a serving worker down
        // for an accounting artifact on a long soak.
        saturating_add(&self.detect_us, timings.detect_us);
        saturating_add(&self.retrieve_us, timings.retrieve_us);
        saturating_add(&self.surrogate_us, timings.surrogate_us);
        saturating_add(&self.utility_us, timings.utility_us);
        saturating_add(&self.select_us, timings.select_us);
        saturating_add(&self.total_us, timings.total_us);
        // Stage distributions cover computed requests only (cache hits and
        // shed/internal refusals report all-zero stages and would bury the
        // medians), and skip 0 µs samples: a stage that didn't run — or
        // rounded below a microsecond — carries no attribution signal, and
        // skipping it keeps the cheap passthrough path at one or two
        // histogram updates instead of five. The total distribution covers
        // every request — it is the latency a client observed, hits
        // included.
        let computed =
            !cache_hit && !matches!(degradation, Degradation::Shed | Degradation::Internal);
        if computed {
            record_nonzero(&self.hist_detect, timings.detect_us);
            record_nonzero(&self.hist_retrieve, timings.retrieve_us);
            record_nonzero(&self.hist_surrogate, timings.surrogate_us);
            record_nonzero(&self.hist_utility, timings.utility_us);
            record_nonzero(&self.hist_select, timings.select_us);
        }
        self.hist_total.record(timings.total_us);
        if let Some(slo) = &self.slo {
            // Bad = not served its full contract: any degradation (a
            // shed, a contained panic, a deadline or shard-loss
            // fallback), or a full page that simply took too long.
            let bad = !matches!(degradation, Degradation::None)
                || timings.total_us > slo.config().target_us;
            slo.observe(bad);
        }
    }

    /// Record one worker-pool queue wait (enqueue → worker pickup).
    ///
    /// Kept separate from [`record`](Self::record) because the wait is
    /// known only to the pool, after the engine has already recorded the
    /// request.
    pub fn record_queue_wait(&self, us: u64) {
        self.queue_waits.fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.queue_wait_us, us);
        self.hist_queue_wait.record(us);
    }

    /// Total requests recorded so far — one relaxed atomic load, for
    /// pollers (swap pacing, progress displays) that must not pay the
    /// full histogram [`snapshot`](Self::snapshot) per probe.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let total_us = self.total_us.load(Ordering::Relaxed);
        let queue_waits = self.queue_waits.load(Ordering::Relaxed);
        let queue_wait_us = self.queue_wait_us.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            diversified: self.diversified.load(Ordering::Relaxed),
            passthrough: self.passthrough.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            degraded_shard_loss: self.degraded_shard_loss.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            generation: 0, // filled by the engine, which knows the handle
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_rejected: self.swap_rejected.load(Ordering::Relaxed),
            carried_over: self.carried_over.load(Ordering::Relaxed),
            carry_skipped: self.carry_skipped.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            slo_burn_alerts: self.slo.as_ref().map_or(0, |s| s.alerts()),
            slo_alert_active: self.slo.as_ref().is_some_and(|s| s.alert_active()),
            queue_waits,
            mean_queue_wait_us: if queue_waits == 0 {
                0.0
            } else {
                queue_wait_us as f64 / queue_waits as f64
            },
            stage_sums: StageTimings {
                detect_us: self.detect_us.load(Ordering::Relaxed),
                retrieve_us: self.retrieve_us.load(Ordering::Relaxed),
                surrogate_us: self.surrogate_us.load(Ordering::Relaxed),
                utility_us: self.utility_us.load(Ordering::Relaxed),
                select_us: self.select_us.load(Ordering::Relaxed),
                queue_wait_us,
                total_us,
            },
            mean_total_us: if requests == 0 {
                0.0
            } else {
                total_us as f64 / requests as f64
            },
            latency: StageLatencies {
                detect: self.hist_detect.stats(),
                retrieve: self.hist_retrieve.stats(),
                surrogate: self.hist_surrogate.stats(),
                utility: self.hist_utility.stats(),
                select: self.hist_select.stats(),
                queue_wait: self.hist_queue_wait.stats(),
                total: self.hist_total.stats(),
            },
        }
    }
}

/// `counter += v` without wrap-around: cumulative microsecond sums on a
/// long soak must clamp at `u64::MAX`, not panic (debug) or restart
/// (release).
fn saturating_add(counter: &AtomicU64, v: u64) {
    if v == 0 {
        return;
    }
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(cur.saturating_add(v))
    });
}

/// Record `us` into `h` unless it is a structural zero (stage skipped or
/// sub-µs): stage histograms attribute *where time went*, and 0 µs
/// samples say only "not here" while costing atomics on the hot path.
fn record_nonzero(h: &LatencyHistogram, us: u64) {
    if us > 0 {
        h.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let m = ServeMetrics::default();
        m.record(
            false,
            true,
            Degradation::None,
            StageTimings {
                detect_us: 1,
                retrieve_us: 2,
                surrogate_us: 5,
                utility_us: 3,
                select_us: 4,
                queue_wait_us: 0,
                total_us: 11,
            },
        );
        m.record(
            true,
            true,
            Degradation::None,
            StageTimings {
                total_us: 1,
                ..Default::default()
            },
        );
        m.record(
            false,
            false,
            Degradation::Deadline,
            StageTimings {
                total_us: 3,
                ..Default::default()
            },
        );
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.diversified, 1);
        assert_eq!(s.passthrough, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.degraded_shard_loss, 0);
        assert_eq!(s.stage_sums.detect_us, 1);
        assert_eq!(s.stage_sums.surrogate_us, 5);
        assert_eq!(s.stage_sums.total_us, 15);
        assert!((s.mean_total_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shard_loss_counted_apart_from_deadline_degradation() {
        let m = ServeMetrics::default();
        m.record(
            false,
            false,
            Degradation::ShardLoss,
            StageTimings::default(),
        );
        m.record(false, false, Degradation::Deadline, StageTimings::default());
        m.record(false, false, Degradation::None, StageTimings::default());
        let s = m.snapshot();
        assert_eq!(s.passthrough, 3);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.degraded_shard_loss, 1);
    }

    #[test]
    fn shed_and_internal_are_disjoint_leaf_classes() {
        let m = ServeMetrics::default();
        m.record(false, false, Degradation::Shed, StageTimings::default());
        m.record(false, false, Degradation::Shed, StageTimings::default());
        m.record(false, false, Degradation::Internal, StageTimings::default());
        m.record(false, true, Degradation::None, StageTimings::default());
        m.record(true, true, Degradation::None, StageTimings::default());
        m.record(false, false, Degradation::Deadline, StageTimings::default());
        let s = m.snapshot();
        assert_eq!(s.shed, 2);
        assert_eq!(s.internal_errors, 1);
        assert_eq!(s.passthrough, 1, "shed/internal are not passthrough");
        // The leaf classes partition the request total.
        assert_eq!(
            s.requests,
            s.cache_hits + s.diversified + s.passthrough + s.shed + s.internal_errors
        );
    }

    #[test]
    fn timing_sums_saturate_instead_of_wrapping() {
        let m = ServeMetrics::default();
        m.record(
            false,
            true,
            Degradation::None,
            StageTimings {
                total_us: u64::MAX - 1,
                detect_us: u64::MAX,
                ..Default::default()
            },
        );
        m.record(
            false,
            true,
            Degradation::None,
            StageTimings {
                total_us: 1000,
                detect_us: 1000,
                ..Default::default()
            },
        );
        m.record_queue_wait(u64::MAX);
        m.record_queue_wait(7);
        let s = m.snapshot();
        assert_eq!(s.stage_sums.total_us, u64::MAX);
        assert_eq!(s.stage_sums.detect_us, u64::MAX);
        assert_eq!(s.stage_sums.queue_wait_us, u64::MAX);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn queue_waits_average_over_queued_requests_only() {
        let m = ServeMetrics::default();
        let s = m.snapshot();
        assert_eq!(s.queue_waits, 0);
        assert_eq!(s.mean_queue_wait_us, 0.0);
        m.record_queue_wait(100);
        m.record_queue_wait(300);
        let s = m.snapshot();
        assert_eq!(s.queue_waits, 2);
        assert!((s.mean_queue_wait_us - 200.0).abs() < 1e-12);
        assert_eq!(s.stage_sums.queue_wait_us, 400);
    }

    #[test]
    fn stage_histograms_cover_computed_requests_only() {
        let m = ServeMetrics::default();
        // A computed, diversified request: lands in the stage histograms.
        m.record(
            false,
            true,
            Degradation::None,
            StageTimings {
                utility_us: 9,
                select_us: 3,
                total_us: 12,
                ..Default::default()
            },
        );
        // A cache hit and a shed refusal: total-only.
        m.record(
            true,
            true,
            Degradation::None,
            StageTimings {
                total_us: 1,
                ..Default::default()
            },
        );
        m.record(false, false, Degradation::Shed, StageTimings::default());
        m.record_queue_wait(40);
        let s = m.snapshot();
        assert_eq!(s.latency.utility.count, 1);
        assert_eq!(s.latency.utility.p99_us, 9);
        assert_eq!(s.latency.select.max_us, 3);
        assert_eq!(s.latency.total.count, 3, "total covers every request");
        assert_eq!(s.latency.total.max_us, 12);
        assert_eq!(s.latency.queue_wait.count, 1);
        assert_eq!(s.latency.queue_wait.p50_us, 40);
    }

    #[test]
    fn swap_counters_and_slo_surface_in_the_snapshot() {
        let m = ServeMetrics::with_slo(Some(SloConfig {
            target_us: 100,
            objective: 0.9,
            window: 4,
            burn_threshold: 2.0,
        }));
        m.record_swap();
        m.record_swap();
        m.record_swap_rejected();
        m.record_carry(5, 2);
        m.record_carry(1, 0);
        m.record_hedge();
        // One hot window: 4/4 degraded requests ⇒ burn 10 ≥ 2.
        for _ in 0..4 {
            m.record(false, false, Degradation::Deadline, StageTimings::default());
        }
        let s = m.snapshot();
        assert_eq!(s.swaps, 2);
        assert_eq!(s.swap_rejected, 1);
        assert_eq!((s.carried_over, s.carry_skipped), (6, 2));
        assert_eq!(s.hedges, 1);
        assert_eq!(s.slo_burn_alerts, 1);
        assert!(s.slo_alert_active);
        assert_eq!(s.generation, 0, "bare metrics know no generation");
        // A clean window clears the latch; slow-but-served still counts
        // as bad when above target.
        for _ in 0..4 {
            m.record(false, true, Degradation::None, StageTimings::default());
        }
        let s = m.snapshot();
        assert_eq!(s.slo_burn_alerts, 1);
        assert!(!s.slo_alert_active);
        for _ in 0..4 {
            m.record(
                false,
                true,
                Degradation::None,
                StageTimings {
                    total_us: 10_000, // 100× the target: bad despite a full page
                    ..Default::default()
                },
            );
        }
        let s = m.snapshot();
        assert_eq!(s.slo_burn_alerts, 2);
        assert!(s.slo_alert_active);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = ServeMetrics::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record(
                            false,
                            true,
                            Degradation::None,
                            StageTimings {
                                total_us: 2,
                                ..Default::default()
                            },
                        );
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.requests, 8000);
        assert_eq!(s.stage_sums.total_us, 16_000);
    }
}
