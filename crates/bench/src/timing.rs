//! Wall-clock timing helpers for the table binaries.
//!
//! Criterion drives the micro-benches under `benches/`; the table binaries
//! need raw per-call milliseconds in a controlled loop instead, because
//! the paper reports absolute per-query times (Table 2).

use std::time::Instant;

/// A measured quantity: median over repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Timed {
    /// Median wall-clock milliseconds.
    pub median_ms: f64,
    /// Minimum observed.
    pub min_ms: f64,
    /// Maximum observed.
    pub max_ms: f64,
}

/// Run `f` `reps` times and report the median/min/max in milliseconds.
/// The closure's result is returned through `sink` semantics (black-box:
/// its length is accumulated) so the optimizer cannot elide the work.
pub fn time_median_ms<T>(reps: usize, mut f: impl FnMut() -> Vec<T>) -> Timed {
    assert!(reps >= 1);
    let mut samples = Vec::with_capacity(reps);
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        sink = sink.wrapping_add(out.len());
        samples.push(elapsed.as_secs_f64() * 1e3);
    }
    std::hint::black_box(sink);
    samples.sort_by(f64::total_cmp);
    Timed {
        median_ms: samples[samples.len() / 2],
        min_ms: samples[0],
        max_ms: *samples.last().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_positive_time() {
        let t = time_median_ms(3, || {
            let v: Vec<u64> = (0..10_000).collect();
            v
        });
        assert!(t.median_ms >= 0.0);
        assert!(t.min_ms <= t.median_ms && t.median_ms <= t.max_ms);
    }

    #[test]
    #[should_panic]
    fn zero_reps_panics() {
        let _ = time_median_ms(0, Vec::<u8>::new);
    }
}
