//! Ablation (ours): sweep the relevance/diversity mixing parameter λ for
//! OptSelect and xQuAD and report α-NDCG@20 / IA-P@20.
//!
//! Usage: `ablation_lambda [--sessions N]` (default 20 000)
//!
//! The paper fixes λ = 0.15 ("the value maximizing α-NDCG@20 in \[24\]")
//! without showing the sweep; this binary regenerates it on the synthetic
//! testbed, plus MMR across its own λ for context.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{DiversificationPipeline, Diversifier, Mmr, OptSelect, PipelineParams, XQuad};
use serpdiv_eval::report::f3;
use serpdiv_eval::{alpha_ndcg_at, ia_precision_at, Table};
use serpdiv_index::DocId;

const K: usize = 1_000;
const N_CANDIDATES: usize = 25_000;
const LAMBDAS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let sessions = arg_usize("--sessions").unwrap_or(20_000);
    eprintln!("building lab ({sessions} sessions)...");
    let lab = Lab::build(LabConfig::trec(sessions));
    let engine = lab.engine();
    let params = PipelineParams {
        k_spec_results: 20,
        utility: serpdiv_core::UtilityParams { threshold_c: 0.05 },
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &lab.model, params);

    // One input per topic, shared across the sweep.
    let inputs: Vec<Option<(Vec<DocId>, serpdiv_core::DiversifyInput)>> = lab
        .testbed
        .topics
        .iter()
        .map(|t| {
            pipeline
                .build_input(&t.query, N_CANDIDATES)
                .map(|(b, i)| (b.into_iter().map(|h| h.doc).collect(), i))
        })
        .collect();
    let baselines: Vec<Vec<DocId>> = lab
        .testbed
        .topics
        .iter()
        .map(|t| {
            engine
                .search(&t.query, K)
                .into_iter()
                .map(|h| h.doc)
                .collect()
        })
        .collect();

    println!("\nLambda sweep (alpha-NDCG@20 / IA-P@20, threshold c = 0.05)\n");
    let mut t = Table::new(&[
        "lambda",
        "OptSelect aNDCG@20",
        "OptSelect IA-P@20",
        "xQuAD aNDCG@20",
        "xQuAD IA-P@20",
        "MMR aNDCG@20",
        "MMR IA-P@20",
    ]);
    for &lambda in &LAMBDAS {
        let mut cells = vec![format!("{lambda:.2}")];
        for algo in ["opt", "xquad", "mmr"] {
            let (mut andcg, mut iap) = (0.0, 0.0);
            for (ti, topic) in lab.testbed.topics.iter().enumerate() {
                let ranking: Vec<DocId> = match &inputs[ti] {
                    None => baselines[ti].clone(),
                    Some((docs, input)) => {
                        let idx = match algo {
                            "opt" => OptSelect::with_lambda(lambda).select(input, K),
                            "xquad" => XQuad::with_lambda(lambda).select(input, K),
                            _ => Mmr::with_lambda(lambda).select(input, K),
                        };
                        idx.into_iter().map(|i| docs[i]).collect()
                    }
                };
                andcg += alpha_ndcg_at(&ranking, &lab.testbed.qrels, topic.id, 0.5, 20);
                iap += ia_precision_at(&ranking, &lab.testbed.qrels, topic.id, 20);
            }
            let n = lab.testbed.topics.len() as f64;
            cells.push(f3(andcg / n));
            cells.push(f3(iap / n));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("(the paper fixes lambda = 0.15 for OptSelect and xQuAD)");
}

fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
