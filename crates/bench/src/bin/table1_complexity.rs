//! Table 1 — "Time complexity of the three algorithms considered" —
//! verified empirically: log–log scaling fits of selection time against
//! `n = |Rq|` (all three should be ≈ linear) and against `k` (the greedy
//! algorithms ≈ linear, OptSelect ≈ flat/logarithmic).

use serpdiv_bench::{time_median_ms, SelectionWorkload, WorkloadConfig};
use serpdiv_core::{Diversifier, IaSelect, OptSelect, XQuad};
use serpdiv_eval::Table;

/// Least-squares slope of `ln(y)` against `ln(x)`.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-9).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn run_algo(name: &str, input: &serpdiv_core::DiversifyInput, k: usize) -> Vec<usize> {
    match name {
        "OptSelect" => OptSelect::new().select(input, k),
        "xQuAD" => XQuad::new().select(input, k),
        "IASelect" => IaSelect::new().select(input, k),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Table 1 reproduction — asymptotic complexity, verified by scaling fits\n");
    println!("paper:  IASelect O(nk)   xQuAD O(nk)   OptSelect O(n log2 k)\n");

    let algos = ["OptSelect", "xQuAD", "IASelect"];

    // --- scaling in n (k fixed at 100) -----------------------------------
    let ns = [2_000usize, 4_000, 8_000, 16_000, 32_000];
    let k = 100;
    let mut t = Table::new(&["algorithm", "slope vs n", "expected"]);
    for name in algos {
        let mut points = Vec::new();
        for &n in &ns {
            let w = SelectionWorkload::generate(WorkloadConfig::table2(n), 3);
            let timed = time_median_ms(3, || {
                w.queries
                    .iter()
                    .map(|q| run_algo(name, q, k))
                    .collect::<Vec<_>>()
            });
            points.push((n as f64, timed.median_ms));
        }
        t.row(vec![
            name.to_string(),
            format!("{:.2}", loglog_slope(&points)),
            "≈ 1 (linear)".to_string(),
        ]);
    }
    println!("{}", t.render());

    // --- scaling in k (n fixed at 20 000) --------------------------------
    let ks = [16usize, 64, 256, 1_024];
    let n = 20_000;
    let w = SelectionWorkload::generate(WorkloadConfig::table2(n), 3);
    let mut t = Table::new(&["algorithm", "slope vs k", "expected"]);
    for name in algos {
        let mut points = Vec::new();
        for &k in &ks {
            let timed = time_median_ms(3, || {
                w.queries
                    .iter()
                    .map(|q| run_algo(name, q, k))
                    .collect::<Vec<_>>()
            });
            points.push((k as f64, timed.median_ms));
        }
        let expected = if name == "OptSelect" {
            "≈ 0 (log k)"
        } else {
            "≈ 1 (linear)"
        };
        t.row(vec![
            name.to_string(),
            format!("{:.2}", loglog_slope(&points)),
            expected.to_string(),
        ]);
    }
    println!("{}", t.render());
}
