//! `surrogate_bench` — microbenchmark of snippet-surrogate construction:
//! the per-request text path (tokenize + stem the whole body, window
//! rescan, snippet `String`, re-tokenize to vectorize) versus the
//! compiled [`ForwardIndex`] path (incremental `TermId`-stream window
//! slide + direct TF-IDF emission), across document lengths and window
//! sizes, reporting ns/surrogate and the speedup. Also prints the
//! one-off forward-index compile time and footprint, and asserts the two
//! paths emit identical vectors on the benchmarked inputs.
//!
//! Usage:
//! ```text
//! surrogate_bench [--docs N] [--iters N] [--lens A,B,...] [--windows A,B,...]
//! ```
//! Defaults: 24 docs per length, doc lengths {100, 1000, 10000} tokens,
//! windows {10, 30, 100}, iteration count auto-scaled per length.

use serpdiv_index::{Document, ForwardIndex, IndexBuilder, SnippetGenerator, SparseVector};
use std::time::Instant;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Web-ish token mix: a Zipf-lite content vocabulary plus frequent
/// stopwords, so the compiled streams carry realistic sentinel density.
fn body(rng: &mut Lcg, len: usize) -> String {
    const STOPS: [&str; 8] = ["the", "of", "and", "is", "to", "in", "that", "it"];
    let mut out = String::with_capacity(len * 7);
    for i in 0..len {
        if i > 0 {
            out.push(' ');
        }
        if rng.below(10) < 4 {
            out.push_str(STOPS[rng.below(STOPS.len() as u64) as usize]);
        } else {
            // w0 is ~64× likelier than w1023 — head terms recur.
            let r = rng.below(1 << 16) as f64 / f64::from(1u32 << 16);
            let id = ((r * r * r * 1024.0) as u64).min(1023);
            out.push_str(&format!("w{id}"));
        }
    }
    out
}

fn parse_list(v: &str) -> Vec<usize> {
    v.split(',').filter_map(|x| x.parse().ok()).collect()
}

fn arg_num(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_list(name: &str, default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| parse_list(v))
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let docs_per_len = arg_num("--docs", 24).max(1);
    let iters_flag = arg_num("--iters", 0);
    let lens = arg_list("--lens", &[100, 1_000, 10_000]);
    let windows = arg_list("--windows", &[10, 30, 100]);

    println!(
        "surrogate_bench — text oracle vs compiled forward index \
         ({docs_per_len} docs/length, lens {lens:?}, windows {windows:?})"
    );
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>9}",
        "doc len", "window", "naive ns/surr", "compiled ns/surr", "speedup"
    );

    let mut rng = Lcg(0xbe9c_5e9d);
    for &len in &lens {
        // One corpus per document length; a 3-term query drawn from the
        // head of the content vocabulary so windows actually compete.
        let mut b = IndexBuilder::new();
        for i in 0..docs_per_len {
            b.add(Document::new(
                i as u32,
                format!("http://bench/{len}/{i}"),
                "w1 w2 benchmark title",
                body(&mut rng, len),
            ));
        }
        let index = b.build();
        let t = Instant::now();
        let forward = ForwardIndex::build(&index);
        let compile_ms = t.elapsed().as_secs_f64() * 1e3;
        let qterms = index.analyze_query("w0 w1 w5");
        assert!(!qterms.is_empty(), "query analyzed away");
        // Enough iterations to measure, few enough to finish: ~100k
        // tokens of naive work per (len, window) cell.
        let iters = if iters_flag > 0 {
            iters_flag
        } else {
            (200_000 / len).clamp(4, 400)
        };

        for &window in &windows {
            let snippets = SnippetGenerator::with_window(window);

            let t = Instant::now();
            let mut naive_sink = 0usize;
            for _ in 0..iters {
                for doc in index.store().iter() {
                    let snip = snippets.snippet(doc, &qterms, index.vocab());
                    let v = SparseVector::from_text(&snip, &index);
                    naive_sink += std::hint::black_box(&v).nnz();
                }
            }
            let naive_ns = t.elapsed().as_secs_f64() * 1e9 / (iters * docs_per_len) as f64;

            let t = Instant::now();
            let mut fast_sink = 0usize;
            for _ in 0..iters {
                for doc in index.store().iter() {
                    let v = snippets.surrogate(&forward, doc.id, &qterms);
                    fast_sink += std::hint::black_box(&v).nnz();
                }
            }
            let fast_ns = t.elapsed().as_secs_f64() * 1e9 / (iters * docs_per_len) as f64;

            assert_eq!(naive_sink, fast_sink, "paths diverged under the benchmark");
            // Full vector equality on the benchmarked inputs (the
            // equivalence suite covers the edge shapes; this pins the
            // exact corpus being timed).
            for doc in index.store().iter() {
                let snip = snippets.snippet(doc, &qterms, index.vocab());
                assert_eq!(
                    snippets.surrogate(&forward, doc.id, &qterms),
                    SparseVector::from_text(&snip, &index),
                    "doc {:?} window {window}",
                    doc.id
                );
            }

            println!(
                "{:<10} {:>8} {:>16.0} {:>16.0} {:>8.1}x",
                len,
                window,
                naive_ns,
                fast_ns,
                naive_ns / fast_ns
            );
        }
        println!(
            "  (forward index for {len}-token docs: {:.1} KiB, compiled in {compile_ms:.1} ms)",
            forward.byte_size() as f64 / 1024.0
        );
    }
}
