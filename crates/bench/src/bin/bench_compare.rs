//! `bench_compare` — diff two `serve_bench` JSON reports.
//!
//! Compares a baseline and a candidate `BENCH_serve*.json` row by row
//! (rows are matched on the `(algorithm, shards, executor_threads,
//! fleet)` key) and flags
//!
//! * **p99 regressions**: candidate `p99_ms` above the baseline by more
//!   than the tolerance (default 10%, `--p99-tol PCT`), and
//! * **throughput regressions**: candidate `qps` below the baseline by
//!   more than the tolerance (default 5%, `--qps-tol PCT`) — the PR 8
//!   acceptance band.
//!
//! `--swap` turns on swap-profile mode for diffing the `--swap-every`
//! report pair (`BENCH_serve_swap_baseline.json` vs
//! `BENCH_serve_swap.json`). Each matched row additionally prints its
//! swap telemetry (swaps, publish p99, carry-over counters), and the
//! gates change to fit the pairing:
//!
//! * when **both** rows ran swaps (same profile on both sides), the
//!   `p99_ms` gate applies as usual — a swap-profile tail that regressed
//!   by more than the tolerance (default 10%) fails the diff;
//! * when only the candidate ran swaps (a no-swap baseline vs the swap
//!   profile), the p99/QPS deltas are the *swap tax* — structural, so
//!   they are reported, not gated. Instead the candidate's publish
//!   latency is gated absolutely: `swap_p99_us` above `--swap-p99-max`
//!   (default 1000µs) fails — a publish is an epoch pointer swap plus an
//!   O(1) carry plan, and anything at millisecond scale means eager
//!   work crept back onto the publish path. Swap rows missing the
//!   `carried_over`/`carry_skipped` columns fail too, so the carry
//!   telemetry cannot silently vanish from the report schema.
//!
//! Missing fields and rows present on only one side are reported but are
//! not regressions (reports evolve; older baselines lack newer fields).
//! Exits 1 if any regression was flagged, 0 otherwise, so CI and scripts
//! can gate on it:
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json [--p99-tol PCT] [--qps-tol PCT]
//!               [--swap] [--swap-p99-max US]
//! ```

use serpdiv_mining::json::{parse, Value};

/// The identity of one report row within a sweep.
#[derive(PartialEq, Eq, Hash, Clone, Debug)]
struct RowKey {
    algorithm: String,
    shards: u64,
    executor_threads: u64,
    fleet: u64,
}

/// One parsed `algorithms[]` row: its key plus every numeric field.
struct Row {
    key: RowKey,
    fields: Vec<(String, f64)>,
}

impl Row {
    fn get(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare BASELINE.json CANDIDATE.json [--p99-tol PCT] [--qps-tol PCT] \
         [--swap] [--swap-p99-max US]"
    );
    std::process::exit(2);
}

fn load_rows(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let root = parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e:?}");
        std::process::exit(2);
    });
    let algos = root
        .as_object()
        .and_then(|o| o.get("algorithms"))
        .and_then(Value::as_array)
        .unwrap_or_else(|| {
            eprintln!("error: {path} has no \"algorithms\" array");
            std::process::exit(2);
        });
    let mut rows = Vec::with_capacity(algos.len());
    for (i, row) in algos.iter().enumerate() {
        let Some(obj) = row.as_object() else {
            eprintln!("warning: {path}: algorithms[{i}] is not an object, skipped");
            continue;
        };
        let num = |name: &str| obj.get(name).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let Some(algorithm) = obj.get("algorithm").and_then(Value::as_str) else {
            eprintln!("warning: {path}: algorithms[{i}] has no algorithm name, skipped");
            continue;
        };
        rows.push(Row {
            key: RowKey {
                algorithm: algorithm.to_string(),
                shards: num("shards"),
                executor_threads: num("executor_threads"),
                fleet: num("fleet"),
            },
            fields: obj
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect(),
        });
    }
    rows
}

fn fmt_key(k: &RowKey) -> String {
    let mut s = k.algorithm.clone();
    if k.shards > 1 {
        s.push_str(&format!(" shards={}", k.shards));
    }
    if k.executor_threads > 0 {
        s.push_str(&format!(" exec={}", k.executor_threads));
    }
    if k.fleet > 0 {
        s.push_str(&format!(" fleet={}", k.fleet));
    }
    s
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut p99_tol_pct = 10.0;
    let mut qps_tol_pct = 5.0;
    let mut swap_mode = false;
    let mut swap_p99_max_us = 1000.0;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut tol = |name: &str| -> f64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a number");
                usage();
            })
        };
        match arg.as_str() {
            "--p99-tol" => p99_tol_pct = tol("--p99-tol"),
            "--qps-tol" => qps_tol_pct = tol("--qps-tol"),
            "--swap" => swap_mode = true,
            "--swap-p99-max" => swap_p99_max_us = tol("--swap-p99-max"),
            p if !p.starts_with("--") => paths.push(p),
            _ => usage(),
        }
    }
    let [baseline_path, candidate_path] = paths[..] else {
        usage();
    };

    let baseline = load_rows(baseline_path);
    let candidate = load_rows(candidate_path);
    println!(
        "bench_compare: {baseline_path} ({} rows) vs {candidate_path} ({} rows); \
         tolerances: p99 +{p99_tol_pct}%, qps -{qps_tol_pct}%\n",
        baseline.len(),
        candidate.len(),
    );

    let mut regressions = 0usize;
    let mut matched = 0usize;
    println!(
        "{:<28} {:>10} {:>10} {:>8}  {:>9} {:>9} {:>8}",
        "row", "p99 base", "p99 cand", "Δ%", "qps base", "qps cand", "Δ%"
    );
    for b in &baseline {
        let Some(c) = candidate.iter().find(|c| c.key == b.key) else {
            println!("{:<28} only in baseline", fmt_key(&b.key));
            continue;
        };
        matched += 1;
        // In swap mode a no-swap baseline row paired with a swapping
        // candidate row measures the swap *tax*, which is structural —
        // report the deltas but gate only same-profile pairings.
        let b_swaps = b.get("swaps").unwrap_or(0.0);
        let c_swaps = c.get("swaps").unwrap_or(0.0);
        let tax_pairing = swap_mode && (b_swaps > 0.0) != (c_swaps > 0.0);
        let mut flags = String::new();
        let (mut p99_cells, mut qps_cells) =
            (String::from("       n/a"), String::from("      n/a"));
        let mut p99_delta = String::from("     ");
        let mut qps_delta = String::from("     ");
        if let (Some(pb), Some(pc)) = (b.get("p99_ms"), c.get("p99_ms")) {
            p99_cells = format!("{pb:>10.3}");
            let delta_pct = if pb > 0.0 {
                (pc - pb) / pb * 100.0
            } else {
                0.0
            };
            p99_delta = format!("{delta_pct:>+8.1}");
            if pb > 0.0 && delta_pct > p99_tol_pct && !tax_pairing {
                flags.push_str("  << p99 REGRESSION");
                regressions += 1;
            }
            p99_cells.push_str(&format!(" {pc:>10.3}"));
        }
        if let (Some(qb), Some(qc)) = (b.get("qps"), c.get("qps")) {
            qps_cells = format!("{qb:>9.0} {qc:>9.0}");
            let delta_pct = if qb > 0.0 {
                (qc - qb) / qb * 100.0
            } else {
                0.0
            };
            qps_delta = format!("{delta_pct:>+8.1}");
            if qb > 0.0 && delta_pct < -qps_tol_pct && !tax_pairing {
                flags.push_str("  << QPS REGRESSION");
                regressions += 1;
            }
        }
        if swap_mode && c_swaps > 0.0 {
            // Publish must stay an O(1) pointer swap: a millisecond-scale
            // p99 means eager carry-over (or worse) is back on the path.
            let publish_p99 = c.get("swap_p99_us").unwrap_or(0.0);
            if publish_p99 > swap_p99_max_us {
                flags.push_str("  << PUBLISH p99 OVER BOUND");
                regressions += 1;
            }
            // The carry counters are the machine-readable acceptance
            // evidence; a swap row without them is a schema regression.
            if c.get("carried_over").is_none() || c.get("carry_skipped").is_none() {
                flags.push_str("  << CARRY COLUMNS MISSING");
                regressions += 1;
            }
        }
        println!(
            "{:<28} {p99_cells} {p99_delta}  {qps_cells} {qps_delta}{flags}",
            fmt_key(&b.key)
        );
        if swap_mode && (b_swaps > 0.0 || c_swaps > 0.0) {
            let swap_info = |r: &Row| {
                format!(
                    "{} swaps, publish p99 {}µs, carried {}, skipped {}",
                    r.get("swaps").unwrap_or(0.0),
                    r.get("swap_p99_us").unwrap_or(0.0),
                    r.get("carried_over").unwrap_or(0.0),
                    r.get("carry_skipped").unwrap_or(0.0),
                )
            };
            println!(
                "{:<28}   base: {}; cand: {}{}",
                "",
                swap_info(b),
                swap_info(c),
                if tax_pairing {
                    "  (swap-tax pairing: serving deltas reported, not gated)"
                } else {
                    ""
                }
            );
        }
    }
    for c in &candidate {
        if !baseline.iter().any(|b| b.key == c.key) {
            println!("{:<28} only in candidate", fmt_key(&c.key));
        }
    }

    println!("\n{matched} matched row(s), {regressions} regression(s) flagged",);
    if matched == 0 {
        eprintln!("warning: no rows matched between the two reports");
    }
    std::process::exit(if regressions > 0 { 1 } else { 0 });
}
