//! §4.1's memory-feasibility budget — "storing N ambiguous queries along
//! with the data needed to assess the similarity among results lists
//! incurs in a maximal memory occupancy of N · |S_q̂| · |R_q̂′| · L bytes."
//!
//! Usage: `footprint [--sessions N]` (default 20 000)
//!
//! Builds the deployable stores (specialization model + per-specialization
//! surrogate store) and compares the *measured* bytes against the paper's
//! back-of-the-envelope bound.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{DiversificationPipeline, PipelineParams};
use serpdiv_eval::Table;

fn main() {
    let sessions = arg_usize("--sessions").unwrap_or(20_000);
    eprintln!("building lab ({sessions} sessions)...");
    let lab = Lab::build(LabConfig::trec(sessions));
    let engine = lab.engine();
    let params = PipelineParams {
        k_spec_results: 20,
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &lab.model, params);
    let store = pipeline.store();

    let n = lab.model.len();
    let max_specs = lab.model.max_specializations();
    let r = params.k_spec_results;
    let l = store.avg_snippet_len();
    let bound = n as f64 * max_specs as f64 * r as f64 * l;

    println!("\nSection 4.1 memory-feasibility reproduction\n");
    let mut t = Table::new(&["quantity", "value"]);
    t.row(vec!["N (ambiguous queries)".into(), n.to_string()]);
    t.row(vec![
        "|S_q̂| (max specializations)".into(),
        max_specs.to_string(),
    ]);
    t.row(vec![
        "|R_q̂′| (results per specialization)".into(),
        r.to_string(),
    ]);
    t.row(vec!["L (avg snippet bytes)".into(), format!("{l:.1}")]);
    t.row(vec![
        "paper bound N·|S_q̂|·|R_q̂′|·L".into(),
        format!("{:.1} KiB", bound / 1024.0),
    ]);
    t.row(vec![
        "measured surrogate store".into(),
        format!("{:.1} KiB", store.byte_size() as f64 / 1024.0),
    ]);
    t.row(vec![
        "measured query-level model".into(),
        format!("{:.1} KiB", lab.model.byte_size() as f64 / 1024.0),
    ]);
    println!("{}", t.render());
    println!(
        "store holds {} distinct specializations; measured/bound = {:.2}",
        store.len(),
        store.byte_size() as f64 / bound.max(1.0)
    );
    println!("(the measured store must stay below the worst-case bound)");
}

fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
