//! Table 2 — "Execution time (in msec.) of OptSelect, xQuAD, and IASelect
//! by varying both the size of the initial set of documents to diversify
//! (|Rq|), and the size of the diversified result set (k = |S|)."
//!
//! Usage: `table2_efficiency [--full]`
//!
//! The paper averages over the 50 queries of the TREC 2009 Web Track's
//! Diversity Task on an Intel Core 2 Quad. This harness generates the same
//! workload shape (§4: |Sq| constant and small, utilities precomputed) and
//! reports per-query selection time. `--full` uses 50 queries per cell as
//! in the paper; the default uses 5 (the big greedy cells take seconds per
//! query — the *ratios* are stable either way).

use serpdiv_bench::{time_median_ms, SelectionWorkload, WorkloadConfig};
use serpdiv_core::{Diversifier, IaSelect, OptSelect, XQuad};
use serpdiv_eval::report::ms;
use serpdiv_eval::Table;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const KS: [usize; 5] = [10, 50, 100, 500, 1_000];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let queries_per_cell = if full { 50 } else { 5 };
    println!("Table 2 reproduction — per-query selection time (ms), averaged over {queries_per_cell} queries");
    println!("(paper: Intel Core 2 Quad, 50 TREC-2009 queries; shape, not absolute values, is the target)\n");

    type Select = Box<dyn Fn(&serpdiv_core::DiversifyInput, usize) -> Vec<usize>>;
    let algorithms: Vec<(&str, Select)> = vec![
        ("OptSelect", Box::new(|i, k| OptSelect::new().select(i, k))),
        ("xQuAD", Box::new(|i, k| XQuad::new().select(i, k))),
        ("IASelect", Box::new(|i, k| IaSelect::new().select(i, k))),
    ];

    let mut header: Vec<String> = vec!["|Rq|".to_string()];
    header.extend(KS.iter().map(|k| format!("k={k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    for (name, run) in &algorithms {
        println!("{name}");
        let mut table = Table::new(&header_refs);
        for &n in &SIZES {
            let workload = SelectionWorkload::generate(WorkloadConfig::table2(n), queries_per_cell);
            let mut cells = vec![format!("{n}")];
            for &k in &KS {
                // Average per-query time: time all queries back to back.
                let timed = time_median_ms(3, || {
                    workload
                        .queries
                        .iter()
                        .map(|q| run(q, k))
                        .collect::<Vec<_>>()
                });
                cells.push(ms(timed.median_ms / queries_per_cell as f64));
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }

    // The headline claim: two orders of magnitude at the largest cell.
    let n = 100_000;
    let k = 1_000;
    let workload = SelectionWorkload::generate(WorkloadConfig::table2(n), 3);
    let t_opt = time_median_ms(3, || {
        workload
            .queries
            .iter()
            .map(|q| OptSelect::new().select(q, k))
            .collect::<Vec<_>>()
    });
    let t_xq = time_median_ms(1, || {
        workload
            .queries
            .iter()
            .map(|q| XQuad::new().select(q, k))
            .collect::<Vec<_>>()
    });
    let t_ia = time_median_ms(1, || {
        workload
            .queries
            .iter()
            .map(|q| IaSelect::new().select(q, k))
            .collect::<Vec<_>>()
    });
    println!(
        "speedup at |Rq|=100k, k=1000:  xQuAD/OptSelect = {:.0}x, IASelect/OptSelect = {:.0}x",
        t_xq.median_ms / t_opt.median_ms,
        t_ia.median_ms / t_opt.median_ms
    );
    println!("(paper: 2849.83/13.92 = 205x, 4071.81/13.92 = 293x)");
}
