//! Microbenchmark isolating per-shard scatter-gather overhead (dev aid).

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_index::{Retriever, SearchEngine, ShardedIndex};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let lab = Lab::build(LabConfig::small());
    let index = Arc::new(lab.index);
    let queries: Vec<String> = lab
        .test
        .records()
        .iter()
        .take(200)
        .map(|r| lab.test.query_text(r.query).expect("interned").to_string())
        .collect();

    let reps = 50;
    let engine = SearchEngine::new(&index);
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        for q in &queries {
            sink += engine.search(q, 10).len();
        }
    }
    println!(
        "unsharded      {:>8.1} ns/query (sink {sink})",
        t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
    );

    // Pre-analyzed terms: isolates analysis cost from scoring cost.
    let terms: Vec<Vec<serpdiv_text::TermId>> =
        queries.iter().map(|q| index.analyze_query(q)).collect();
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        for q in &queries {
            sink += index.analyze_query(q).len();
        }
    }
    println!(
        "analyze only   {:>8.1} ns/query (sink {sink})",
        t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
    );
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        for ts in &terms {
            sink += engine.search_terms(ts, 10).len();
        }
    }
    println!(
        "unsharded terms{:>8.1} ns/query (sink {sink})",
        t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
    );
    let sharded1 = ShardedIndex::build(index.clone(), 1);
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        for ts in &terms {
            sink += sharded1.retrieve_terms(ts, 10).len();
        }
    }
    println!(
        "sharded1 terms {:>8.1} ns/query (sink {sink})",
        t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
    );

    for shards in [1, 2, 4] {
        let sharded = ShardedIndex::build(index.clone(), shards);
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            for q in &queries {
                sink += sharded.retrieve(q, 10).len();
            }
        }
        println!(
            "sharded x{shards}     {:>8.1} ns/query (sink {sink})",
            t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
        );
        // Sparse fallback for comparison.
        let sparse = ShardedIndex::build(index.clone(), shards).with_dense_accumulator_limit(0);
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            for q in &queries {
                sink += sparse.retrieve(q, 10).len();
            }
        }
        println!(
            "sparse  x{shards}     {:>8.1} ns/query (sink {sink})",
            t.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64
        );
    }
}
