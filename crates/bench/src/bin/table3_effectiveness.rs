//! Table 3 — "Values of α-NDCG, and IA-P for OptSelect, xQuAD, and
//! IASelect by varying the threshold c" on the TREC-2009-shaped testbed.
//!
//! Usage: `table3_effectiveness [--sessions N]` (default 40 000)
//!
//! Setup follows §5: DPH baseline retrieval, |R_q′| = 20, k = 1000,
//! λ = 0.15, α = 0.5, nine thresholds c, metrics at cutoffs
//! {5, 10, 20, 100, 1000}, Wilcoxon significance at the end. The
//! specializations and their probabilities are *mined from the synthetic
//! query log* through the full §3 stack — not read from the ground truth.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{
    run_algorithm, AlgorithmKind, DiversificationPipeline, DiversifyInput, PipelineParams,
};
use serpdiv_eval::report::f3;
use serpdiv_eval::{alpha_ndcg_at, ia_precision_at, wilcoxon_signed_rank, Table, PAPER_CUTOFFS};
use serpdiv_index::DocId;

const C_VALUES: [f64; 9] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.75];
const K: usize = 1_000;
const N_CANDIDATES: usize = 25_000;
const ALPHA: f64 = 0.5;

struct PerTopic {
    topic: usize,
    baseline_docs: Vec<DocId>,
    /// `None` when the model did not flag the query (passthrough).
    input: Option<(Vec<DocId>, DiversifyInput)>,
}

fn main() {
    let sessions = arg_usize("--sessions").unwrap_or(40_000);
    eprintln!("building lab ({sessions} sessions)...");
    let lab = Lab::build(LabConfig::trec(sessions));
    eprintln!(
        "lab ready: {} docs, {} train records, detection rate {:.2}",
        lab.testbed.num_docs(),
        lab.train.len(),
        lab.detection_rate()
    );
    let engine = lab.engine();
    let params = PipelineParams {
        k_spec_results: 20,
        lambda: 0.15,
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &lab.model, params);

    // Build one input per topic at c = 0; thresholds are applied afterwards
    // (same utilities, tightened) so the retrieval cost is paid once.
    eprintln!("preparing per-topic inputs...");
    let topics: Vec<PerTopic> = lab
        .testbed
        .topics
        .iter()
        .map(|t| {
            let baseline_docs: Vec<DocId> = engine
                .search(&t.query, K)
                .into_iter()
                .map(|h| h.doc)
                .collect();
            let input = pipeline
                .build_input(&t.query, N_CANDIDATES)
                .map(|(b, i)| (b.into_iter().map(|h| h.doc).collect::<Vec<_>>(), i));
            PerTopic {
                topic: t.id,
                baseline_docs,
                input,
            }
        })
        .collect();

    let systems = [
        ("OptSelect", AlgorithmKind::OptSelect),
        ("xQuAD", AlgorithmKind::XQuad),
        ("IASelect", AlgorithmKind::IaSelect),
    ];

    let mut header: Vec<String> = vec!["c".into()];
    header.extend(PAPER_CUTOFFS.iter().map(|c| format!("aNDCG@{c}")));
    header.extend(PAPER_CUTOFFS.iter().map(|c| format!("IA-P@{c}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    // Baseline row.
    let base_scores = score_rankings(&lab, &topics, |pt| pt.baseline_docs.clone());
    let mut t = Table::new(&header_refs);
    t.row(row_cells("-", &base_scores));
    println!("DPH Baseline");
    println!("{}", t.render());

    // Per-topic α-NDCG@20 series for the Wilcoxon checks.
    let mut per_topic_at20: Vec<(String, Vec<f64>)> = Vec::new();
    per_topic_at20.push((
        "baseline".into(),
        per_topic_metric(&lab, &topics, |pt| pt.baseline_docs.clone()),
    ));

    for (name, kind) in systems {
        let mut t = Table::new(&header_refs);
        for &c in &C_VALUES {
            let ranking_of = |pt: &PerTopic| ranking_for(pt, kind, c, params);
            let scores = score_rankings(&lab, &topics, ranking_of);
            t.row(row_cells(&format!("{c:.2}"), &scores));
            if (c - 0.05).abs() < 1e-9 {
                per_topic_at20.push((
                    format!("{name} (c=0.05)"),
                    per_topic_metric(&lab, &topics, |pt| ranking_for(pt, kind, c, params)),
                ));
            }
        }
        println!("{name}");
        println!("{}", t.render());
    }

    println!("Wilcoxon signed-rank (two-sided) on per-topic alpha-NDCG@20:");
    for i in 0..per_topic_at20.len() {
        for j in (i + 1)..per_topic_at20.len() {
            let r = wilcoxon_signed_rank(&per_topic_at20[i].1, &per_topic_at20[j].1);
            println!(
                "  {:>22} vs {:<22} p = {:.4}{}",
                per_topic_at20[i].0,
                per_topic_at20[j].0,
                r.p_value,
                if r.significant_at(0.05) {
                    "  (significant)"
                } else {
                    ""
                }
            );
        }
    }
    println!("(paper: no difference among the diversifiers is significant at the 0.05 level)");
}

/// The ranking a system produces for one topic at threshold `c`.
fn ranking_for(pt: &PerTopic, kind: AlgorithmKind, c: f64, params: PipelineParams) -> Vec<DocId> {
    match &pt.input {
        None => pt.baseline_docs.clone(),
        Some((docs, input)) => {
            let thresholded = DiversifyInput::new(
                input.spec_probs.clone(),
                input.relevance.clone(),
                input.utilities.clone().with_threshold(c),
            );
            let (indices, _) = run_algorithm(kind, &thresholded, K, params);
            indices.into_iter().map(|i| docs[i]).collect()
        }
    }
}

/// Mean metric values over all topics at every cutoff: (α-NDCG, IA-P).
fn score_rankings(
    lab: &Lab,
    topics: &[PerTopic],
    ranking_of: impl Fn(&PerTopic) -> Vec<DocId>,
) -> (Vec<f64>, Vec<f64>) {
    let mut andcg = vec![0.0; PAPER_CUTOFFS.len()];
    let mut iap = vec![0.0; PAPER_CUTOFFS.len()];
    for pt in topics {
        let ranking = ranking_of(pt);
        for (ci, &cutoff) in PAPER_CUTOFFS.iter().enumerate() {
            andcg[ci] += alpha_ndcg_at(&ranking, &lab.testbed.qrels, pt.topic, ALPHA, cutoff);
            iap[ci] += ia_precision_at(&ranking, &lab.testbed.qrels, pt.topic, cutoff);
        }
    }
    let n = topics.len() as f64;
    for v in andcg.iter_mut().chain(iap.iter_mut()) {
        *v /= n;
    }
    (andcg, iap)
}

/// Per-topic α-NDCG@20 vector (Wilcoxon input).
fn per_topic_metric(
    lab: &Lab,
    topics: &[PerTopic],
    ranking_of: impl Fn(&PerTopic) -> Vec<DocId>,
) -> Vec<f64> {
    topics
        .iter()
        .map(|pt| alpha_ndcg_at(&ranking_of(pt), &lab.testbed.qrels, pt.topic, ALPHA, 20))
        .collect()
}

fn row_cells(label: &str, scores: &(Vec<f64>, Vec<f64>)) -> Vec<String> {
    let mut cells = vec![label.to_string()];
    cells.extend(scores.0.iter().map(|&v| f3(v)));
    cells.extend(scores.1.iter().map(|&v| f3(v)));
    cells
}

fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
