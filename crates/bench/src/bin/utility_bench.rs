//! `utility_bench` — microbenchmark of the Eq. 1 utility stage: the naive
//! pairwise-cosine matrix build (`UtilityMatrix::compute`) versus the
//! compiled inverted-index fast path (`CompiledSpecStore` + accumulator
//! scoring), over the serve-path workload shape, plus the one-off
//! compilation cost and the parallel-rows variant.
//!
//! Usage:
//! ```text
//! utility_bench [--candidates N] [--specs N] [--results N] [--nnz N] [--iters N]
//! ```
//! Defaults: 100 candidates (the serving `|Rq|`), 8 specializations,
//! 20 results/spec (the paper's `|R_q′|`), 25 nonzeros/surrogate, 20 iters.

use serpdiv_core::{CompiledSpecStore, UtilityMatrix, UtilityParams};
use serpdiv_index::SparseVector;
use serpdiv_text::TermId;
use std::time::Instant;

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic LCG vectors (no rand dependency in the measured loop).
fn make_vector(seed: u64, nnz: usize, vocab: u32) -> SparseVector {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    SparseVector::from_pairs((0..nnz).map(|_| {
        let t = (next() % u64::from(vocab)) as u32;
        let w = (next() % 1000) as f32 / 100.0 + 0.1;
        (TermId(t), w)
    }))
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let n = arg("--candidates", 100);
    let m = arg("--specs", 8);
    let r = arg("--results", 20);
    let nnz = arg("--nnz", 25);
    let iters = arg("--iters", 20).max(1);
    let vocab = 5_000u32;
    let params = UtilityParams::default();

    println!("utility_bench — {n} candidates × {m} specs × {r} results/spec, nnz={nnz}");

    let candidates: Vec<SparseVector> = (0..n as u64).map(|i| make_vector(i, nnz, vocab)).collect();
    let spec_lists: Vec<(String, Vec<SparseVector>)> = (0..m as u64)
        .map(|s| {
            let list = (0..r as u64)
                .map(|i| make_vector(1_000_000 + s * 1_000 + i, nnz, vocab))
                .collect();
            (format!("spec{s}"), list)
        })
        .collect();

    // One-off compilation (the offline deployment step).
    let t = Instant::now();
    let compiled = CompiledSpecStore::build(
        spec_lists
            .iter()
            .map(|(name, list)| (name.as_str(), list.iter())),
    );
    let compile_us = t.elapsed().as_secs_f64() * 1e6;
    println!(
        "compile: {compile_us:.0} µs ({} terms, {} postings, {:.1} KiB)",
        compiled.num_terms(),
        compiled.num_postings(),
        compiled.byte_size() as f64 / 1024.0
    );

    // Naive pairwise path.
    let lists: Vec<Vec<SparseVector>> = spec_lists.iter().map(|(_, l)| l.clone()).collect();
    let naive_us = median_us(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                let m = UtilityMatrix::compute(&candidates, &lists, params);
                std::hint::black_box(&m);
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect(),
    );

    // Compiled fast path: per-request scorer build + row accumulation.
    let spec_names: Vec<&str> = spec_lists.iter().map(|(s, _)| s.as_str()).collect();
    let fast_us = median_us(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                let scorer = compiled.scorer(spec_names.iter().copied());
                let m = scorer.matrix(&candidates, params);
                std::hint::black_box(&m);
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect(),
    );

    // Parallel rows (worth it for offline/batch-sized candidate sets).
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let par_us = median_us(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                let scorer = compiled.scorer(spec_names.iter().copied());
                let m = scorer.matrix_parallel(&candidates, params, threads);
                std::hint::black_box(&m);
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect(),
    );

    // Equivalence sanity check on the exact benchmarked inputs.
    let naive = UtilityMatrix::compute(&candidates, &lists, params);
    let scorer = compiled.scorer(spec_names.iter().copied());
    let fast = scorer.matrix(&candidates, params);
    let mut max_err = 0.0f64;
    for i in 0..n {
        for j in 0..m {
            max_err = max_err.max((naive.get(i, j) - fast.get(i, j)).abs());
        }
    }

    println!("naive matrix:       {naive_us:>10.0} µs  (median of {iters})");
    println!(
        "compiled matrix:    {fast_us:>10.0} µs  ({:.1}× faster)",
        naive_us / fast_us
    );
    println!(
        "compiled ∥ ({threads:>2}t):   {par_us:>10.0} µs  ({:.1}× faster)",
        naive_us / par_us
    );
    println!("max |naive − compiled| = {max_err:.2e}");
    assert!(max_err < 1e-9, "fast path diverged from the oracle");
}
