//! Figure 1 — "Average utility per number of specializations referring to
//! the AOL and MSN query logs" (Appendix C).
//!
//! Usage: `figure1_utility [--sessions N]` (default 30 000 per log)
//!
//! Setup follows Appendix C: each log is split 70/30 into train/test; for
//! every ambiguous query mined from the training log that also occurs in
//! the test log, retrieve |Rq| = 200 results (the paper uses Yahoo! BOSS;
//! we use our DPH engine — the measurement only needs a fixed baseline
//! ranking), diversify with OptSelect (Algorithm 2) at k = 20 with
//! |R_q′| = 20, and report the utility ratio
//! `Σ Ũ(dᵢ ∈ S) / Σ Ũ(dᵢ ∈ Rq top-k)`, bucketed by the number of mined
//! specializations |Sq|. The paper observes ratios roughly between 5 and
//! 10. The testbed here allows up to 28 subtopics per topic, matching the
//! figure's x-range.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{DiversificationPipeline, Diversifier, OptSelect, PipelineParams};
use serpdiv_corpus::TestbedConfig;
use serpdiv_eval::Table;
use serpdiv_querylog::LogConfig;

const N_RQ: usize = 200;
const K: usize = 20;

/// Web-like testbed: many topics with 2–28 subtopics (Figure 1's x-range).
fn weblike_testbed() -> TestbedConfig {
    TestbedConfig {
        num_topics: 60,
        min_subtopics: 2,
        max_subtopics: 28,
        docs_per_subtopic: 8,
        proportional_docs: false,
        // The web at large: most pages matching an ambiguous query serve
        // none of its interpretations. This is what keeps the original
        // (relevance-only) top-k's utility low in the paper's Figure 1.
        distractors_per_topic: 400,
        noise_docs: 1_500,
        background_vocab: 5_000,
        terms_per_subtopic: 12,
        subtopic_popularity_exponent: 0.7,
        docgen: serpdiv_corpus::DocGenConfig {
            // Keyword-heavy junk floats to the top of the relevance-only
            // ranking; flatter background vocabulary keeps accidental
            // snippet overlap low.
            distractor_head_boost: 1.6,
            background_exponent: 0.8,
            ..serpdiv_corpus::DocGenConfig::default()
        },
        seed: 0xF161,
    }
}

fn main() {
    let sessions = arg_usize("--sessions").unwrap_or(30_000);
    let logs = [
        ("AOL", LogConfig::aol_like(sessions)),
        ("MSN", LogConfig::msn_like(sessions)),
    ];

    // bucket |Sq| → (sum of ratios, count) per log.
    let mut buckets: Vec<std::collections::BTreeMap<usize, (f64, usize)>> = vec![
        std::collections::BTreeMap::new(),
        std::collections::BTreeMap::new(),
    ];

    for (li, (label, log_cfg)) in logs.iter().enumerate() {
        eprintln!("building {label}-like lab ({sessions} sessions)...");
        let cfg = LabConfig {
            testbed: weblike_testbed(),
            log: log_cfg.clone(),
            // Laxer filter so large |Sq| survives Algorithm 1's step 2.
            detector_s: 60.0,
            shortcuts_max: 40,
            qfg_threshold: 0.0005,
            train_fraction: 0.7,
        };
        let lab = Lab::build(cfg);
        eprintln!(
            "  mined {} ambiguous queries (detection rate {:.2})",
            lab.model.len(),
            lab.detection_rate()
        );
        let engine = lab.engine();
        let params = PipelineParams {
            k_spec_results: 20,
            // Zero out the weak head-term-only similarity of distractor
            // pages (the §5 threshold mechanism).
            utility: serpdiv_core::UtilityParams { threshold_c: 0.20 },
            snippet_window: 60,
            ..PipelineParams::default()
        };
        let pipeline = DiversificationPipeline::new(&engine, &lab.model, params);
        // λ = 1: Appendix C compares lists "by means of the utility
        // function as in Definition 2" — pure utility, no relevance mix.
        let optselect = OptSelect::with_lambda(1.0);

        // Ambiguous queries that actually occur in the test split.
        let test_queries: std::collections::BTreeSet<String> = lab
            .test
            .records()
            .iter()
            .filter_map(|r| lab.test.query_text(r.query).map(str::to_string))
            .collect();

        for entry in lab.model.iter() {
            if !test_queries.contains(&entry.query) {
                continue;
            }
            let Some((_, input)) = pipeline.build_input(&entry.query, N_RQ) else {
                continue;
            };
            let k = K.min(input.num_candidates());
            if k == 0 {
                continue;
            }
            let overall = |i: usize| input.overall_utility(i, 1.0).max(0.0);
            let selected = optselect.select(&input, k);
            let num: f64 = selected.iter().map(|&i| overall(i)).sum();
            // Original list = candidate order (the baseline ranking).
            let den: f64 = (0..k).map(overall).sum();
            if den <= 1e-12 {
                continue;
            }
            let ratio = num / den;
            let bucket = buckets[li].entry(entry.len()).or_insert((0.0, 0));
            bucket.0 += ratio;
            bucket.1 += 1;
        }
    }

    println!("\nFigure 1 reproduction — average utility ratio per number of specializations");
    println!("(paper: improvement factor between 5 and 10 across |Sq| for both logs)\n");
    let mut t = Table::new(&["|Sq|", "AOL ratio", "AOL n", "MSN ratio", "MSN n"]);
    let all_keys: std::collections::BTreeSet<usize> =
        buckets.iter().flat_map(|b| b.keys().copied()).collect();
    for key in all_keys {
        let cell = |li: usize| -> (String, String) {
            match buckets[li].get(&key) {
                Some(&(sum, n)) if n > 0 => (format!("{:.2}", sum / n as f64), format!("{n}")),
                _ => ("-".into(), "0".into()),
            }
        };
        let (a, an) = cell(0);
        let (m, mn) = cell(1);
        t.row(vec![format!("{key}"), a, an, m, mn]);
    }
    println!("{}", t.render());
}

fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
