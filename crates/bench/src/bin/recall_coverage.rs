//! Appendix C's recall measure — "the number of times our method is able
//! to provide diversified results when they are actually needed", i.e. when
//! a user submits an ambiguous query and then refines it to one of its
//! specializations. The paper reports 61% for AOL and 65% for MSN.
//!
//! Usage: `recall_coverage [--sessions N]` (default 30 000 per log)
//!
//! Measurement: split each log 70/30, mine the model from the training
//! split, walk the *test* split's sessions, and for every adjacent pair
//! (ambiguous query → same-topic specialization, per the generator's
//! ground truth) check whether the mined model covers the ambiguous query.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_corpus::TestbedConfig;
use serpdiv_eval::Table;
use serpdiv_querylog::{split_sessions, LogConfig, QueryKind};

fn main() {
    let sessions = arg_usize("--sessions").unwrap_or(30_000);
    let logs = [
        ("AOL", LogConfig::aol_like(sessions)),
        ("MSN", LogConfig::msn_like(sessions)),
    ];
    println!("Appendix C recall reproduction (paper: AOL 61%, MSN 65%)\n");
    let mut t = Table::new(&["log", "needed", "covered", "recall"]);
    for (label, log_cfg) in logs {
        let mut cfg = LabConfig {
            testbed: TestbedConfig {
                num_topics: 400, // long-tailed topic population
                docs_per_subtopic: 6,
                noise_docs: 500,
                ..TestbedConfig::trec_scaled()
            },
            log: log_cfg,
            ..LabConfig::trec(sessions)
        };
        // Strict Algorithm-1 filter: a specialization must reach f(q)/s of
        // the ambiguous query's frequency to count. Real logs sit in this
        // regime — most tail queries never accumulate enough refinement
        // evidence, which is what caps the paper's recall at 61–65%.
        cfg.detector_s = 3.0;
        cfg.log.topic_exponent = 0.5;
        let lab = Lab::build(cfg);
        let sessions = split_sessions(&lab.test);
        let mut needed = 0usize;
        let mut covered = 0usize;
        for s in &sessions {
            for w in s.records.windows(2) {
                let a = lab.test.records()[w[0]].query;
                let b = lab.test.records()[w[1]].query;
                let (
                    Some(QueryKind::Ambiguous { topic: t1 }),
                    Some(QueryKind::Specialization { topic: t2, .. }),
                ) = (lab.truth.kind(a), lab.truth.kind(b))
                else {
                    continue;
                };
                if t1 != t2 {
                    continue;
                }
                needed += 1;
                if lab
                    .test
                    .query_text(a)
                    .and_then(|q| lab.model.get(q))
                    .is_some()
                {
                    covered += 1;
                }
            }
        }
        let recall = if needed == 0 {
            0.0
        } else {
            covered as f64 / needed as f64
        };
        t.row(vec![
            label.to_string(),
            needed.to_string(),
            covered.to_string(),
            format!("{:.0}%", recall * 100.0),
        ]);
    }
    println!("{}", t.render());
}

fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
