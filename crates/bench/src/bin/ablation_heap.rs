//! Ablation (ours): OptSelect's bounded heaps vs a full-sort reference.
//!
//! Algorithm 2's heaps cap every per-specialization structure at
//! `⌊k·P⌋+1` entries, giving the `O(n·|Sq|·log k)` bound of Table 1. The
//! obvious alternative sorts all candidates by overall utility —
//! `O(n·|Sq| + n log n)`. This binary measures both and checks that the
//! heap discipline loses nothing on the MaxUtility objective.

use serpdiv_bench::{time_median_ms, SelectionWorkload, WorkloadConfig};
use serpdiv_core::{Diversifier, DiversifyInput, OptSelect};
use serpdiv_eval::report::ms;
use serpdiv_eval::Table;

const LAMBDA: f64 = 0.15;

/// Full-sort reference: identical selection semantics, no bounded heaps.
fn full_sort_optselect(input: &DiversifyInput, k: usize) -> Vec<usize> {
    let n = input.num_candidates();
    let m = input.num_specializations();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let overall: Vec<f64> = (0..n).map(|i| input.overall_utility(i, LAMBDA)).collect();
    let desc = |list: &mut Vec<usize>| {
        list.sort_unstable_by(|&a, &b| overall[b].total_cmp(&overall[a]).then(a.cmp(&b)));
    };
    if m == 0 {
        let mut all: Vec<usize> = (0..n).collect();
        desc(&mut all);
        all.truncate(k);
        return all;
    }
    // Unbounded per-spec lists.
    let mut spec_lists: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..n {
        for (j, list) in spec_lists.iter_mut().enumerate() {
            if input.utilities.get(i, j) > 0.0 {
                list.push(i);
            }
        }
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_unstable_by(|&a, &b| {
        input.spec_probs[b]
            .total_cmp(&input.spec_probs[a])
            .then(a.cmp(&b))
    });
    for list in spec_lists.iter_mut() {
        desc(list);
    }
    let quotas: Vec<usize> = order
        .iter()
        .map(|&j| (k as f64 * input.spec_probs[j]).floor() as usize)
        .collect();

    let mut selected = Vec::with_capacity(k);
    let mut in_s = vec![false; n];
    let mut coverage = vec![0usize; m];
    let add = |i: usize, selected: &mut Vec<usize>, in_s: &mut Vec<bool>, cov: &mut Vec<usize>| {
        if in_s[i] {
            return;
        }
        in_s[i] = true;
        selected.push(i);
        for (h, &j) in order.iter().enumerate() {
            if input.utilities.get(i, j) > 0.0 {
                cov[h] += 1;
            }
        }
    };
    for (h, &j) in order.iter().enumerate() {
        if selected.len() >= k {
            break;
        }
        if let Some(&i) = spec_lists[j].iter().find(|&&i| !in_s[i]) {
            add(i, &mut selected, &mut in_s, &mut coverage);
        }
        let _ = h;
    }
    let mut progressed = true;
    while progressed && selected.len() < k {
        progressed = false;
        for (h, &j) in order.iter().enumerate() {
            if selected.len() >= k || coverage[h] >= quotas[h] {
                continue;
            }
            if let Some(&i) = spec_lists[j].iter().find(|&&i| !in_s[i]) {
                add(i, &mut selected, &mut in_s, &mut coverage);
                progressed = true;
            }
        }
    }
    let mut rest: Vec<usize> = (0..n).filter(|&i| !in_s[i]).collect();
    desc(&mut rest);
    for i in rest {
        if selected.len() >= k {
            break;
        }
        add(i, &mut selected, &mut in_s, &mut coverage);
    }
    desc(&mut selected);
    selected
}

fn objective(input: &DiversifyInput, s: &[usize]) -> f64 {
    s.iter().map(|&i| input.overall_utility(i, LAMBDA)).sum()
}

fn main() {
    println!("OptSelect heap-vs-full-sort ablation (k = 100)\n");
    let k = 100;
    let mut t = Table::new(&["n", "heap ms", "sort ms", "objective ratio"]);
    for &n in &[10_000usize, 50_000, 200_000] {
        let workload = SelectionWorkload::generate(WorkloadConfig::table2(n), 3);
        let heap_t = time_median_ms(5, || {
            workload
                .queries
                .iter()
                .map(|q| OptSelect::with_lambda(LAMBDA).select(q, k))
                .collect::<Vec<_>>()
        });
        let sort_t = time_median_ms(5, || {
            workload
                .queries
                .iter()
                .map(|q| full_sort_optselect(q, k))
                .collect::<Vec<_>>()
        });
        // Quality: the heap variant must match the reference objective.
        let mut ratio_min = f64::INFINITY;
        for q in &workload.queries {
            let heap_obj = objective(q, &OptSelect::with_lambda(LAMBDA).select(q, k));
            let sort_obj = objective(q, &full_sort_optselect(q, k));
            if sort_obj > 0.0 {
                ratio_min = ratio_min.min(heap_obj / sort_obj);
            }
        }
        t.row(vec![
            n.to_string(),
            ms(heap_t.median_ms / 3.0),
            ms(sort_t.median_ms / 3.0),
            format!("{ratio_min:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("(objective ratio ≈ 1.0: the bounded heaps lose nothing on MaxUtility)");
}
