//! `serve_bench` — throughput/latency benchmark of the serving engine.
//!
//! Builds the full offline stack (synthetic testbed → index → query log →
//! mined specialization model → §4.1 store), then replays the *test* split
//! of the query-log session stream against `serpdiv_serve::SearchEngine`
//! through a worker pool at configurable concurrency, once per
//! diversification algorithm, and reports QPS, p50/p95/p99 service
//! latency, cache hit rate and the mean per-stage breakdown.
//!
//! Usage:
//! ```text
//! serve_bench [--sessions N] [--requests N] [--concurrency N] [--k N]
//!             [--candidates N] [--no-cache]
//! ```
//! Defaults: 4000 sessions, 2000 requests, 8 workers, k=10, 100
//! candidates, cache on.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{AlgorithmKind, SpecializationStore};
use serpdiv_index::SearchEngine as Retriever;
use serpdiv_serve::{EngineConfig, QueryRequest, SearchEngine, WorkerPool};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sessions: usize,
    requests: usize,
    concurrency: usize,
    k: usize,
    candidates: usize,
    cache: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 4_000,
        requests: 2_000,
        concurrency: 8,
        k: 10,
        candidates: 100,
        cache: true,
    };
    let usage = "usage: serve_bench [--sessions N] [--requests N] [--concurrency N] \
                 [--k N] [--candidates N] [--no-cache]";
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a numeric argument\n{usage}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = num("--sessions"),
            "--requests" => args.requests = num("--requests"),
            "--concurrency" => args.concurrency = num("--concurrency"),
            "--k" => args.k = num("--k"),
            "--candidates" => args.candidates = num("--candidates"),
            "--no-cache" => args.cache = false,
            other => {
                eprintln!("error: unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if args.requests == 0 {
        eprintln!("error: --requests must be positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1e3
}

fn main() {
    let args = parse_args();
    println!(
        "serve_bench — {} requests/algorithm over {} workers (k={}, |Rq|={}, cache {})",
        args.requests,
        args.concurrency,
        args.k,
        args.candidates,
        if args.cache { "on" } else { "off" },
    );

    // Offline stack: corpus, index, log, mined model (70/30 split).
    let t = Instant::now();
    let mut config = LabConfig::small();
    config.log.num_sessions = args.sessions;
    let lab = Lab::build(config);
    println!(
        "offline stack: {} docs, {} log records, {} ambiguous queries mined ({:.1}s)",
        lab.index.stats().num_docs,
        lab.train.len() + lab.test.len(),
        lab.model.len(),
        t.elapsed().as_secs_f64(),
    );

    // Deployment: shared immutable index/model and one §4.1 store.
    let t = Instant::now();
    let params = serpdiv_core::PipelineParams::default();
    let index = Arc::new(lab.index);
    let model = Arc::new(lab.model);
    let store = {
        let retriever = Retriever::new(&index);
        Arc::new(SpecializationStore::build(
            &model,
            &retriever,
            params.k_spec_results,
            params.snippet_window,
        ))
    };
    println!(
        "specialization store: {} specializations, {:.1} KiB ({:.2}s)\n",
        store.len(),
        store.byte_size() as f64 / 1024.0,
        t.elapsed().as_secs_f64(),
    );

    // The replayed session stream: test-split queries in time order.
    let queries: Vec<String> = lab
        .test
        .records()
        .iter()
        .map(|r| lab.test.query_text(r.query).expect("interned").to_string())
        .collect();
    assert!(!queries.is_empty(), "test split is empty; raise --sessions");

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}  mean stage µs (det/retr/util/sel)",
        "algorithm", "QPS", "p50 ms", "p95 ms", "p99 ms", "hit%", "divers%",
    );
    for algo in [
        AlgorithmKind::Baseline,
        AlgorithmKind::OptSelect,
        AlgorithmKind::IaSelect,
        AlgorithmKind::XQuad,
        AlgorithmKind::Mmr,
    ] {
        let engine = Arc::new(SearchEngine::with_store(
            index.clone(),
            model.clone(),
            store.clone(),
            EngineConfig {
                n_candidates: args.candidates,
                params,
                cache_shards: 16,
                cache_capacity: if args.cache { 8192 } else { 0 },
            },
        ));
        let pool = WorkerPool::new(engine.clone(), args.concurrency);
        let requests: Vec<QueryRequest> = (0..args.requests)
            .map(|i| QueryRequest::new(queries[i % queries.len()].clone(), args.k, algo))
            .collect();

        let wall = Instant::now();
        let responses = pool.serve_batch(requests);
        let wall_s = wall.elapsed().as_secs_f64();

        let mut totals: Vec<u64> = responses.iter().map(|r| r.timings.total_us).collect();
        totals.sort_unstable();
        let qps = responses.len() as f64 / wall_s;
        let hit_rate = engine
            .cache()
            .map(|c| c.stats().hit_rate() * 100.0)
            .unwrap_or(0.0);
        let m = engine.metrics();
        let computed = (m.diversified + m.passthrough).max(1);
        let diversified_pct = 100.0 * responses.iter().filter(|r| r.diversified).count() as f64
            / responses.len() as f64;
        println!(
            "{:<10} {:>9.0} {:>9.3} {:>9.3} {:>9.3} {:>7.1} {:>7.1}  {}/{}/{}/{}",
            format!("{algo:?}"),
            qps,
            percentile(&totals, 50.0),
            percentile(&totals, 95.0),
            percentile(&totals, 99.0),
            hit_rate,
            diversified_pct,
            m.stage_sums.detect_us / computed,
            m.stage_sums.retrieve_us / computed,
            m.stage_sums.utility_us / computed,
            m.stage_sums.select_us / computed,
        );
    }
    println!("\n(per-stage means are over computed — non-cache-hit — requests)");
}
