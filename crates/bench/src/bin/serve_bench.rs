//! `serve_bench` — throughput/latency benchmark of the serving engine.
//!
//! Builds the full offline stack (synthetic testbed → index → query log →
//! mined specialization model → §4.1 store → compiled inverted utility
//! index), then replays the *test* split of the query-log session stream
//! against `serpdiv_serve::SearchEngine` through a worker pool at
//! configurable concurrency, once per diversification algorithm, and
//! reports QPS, p50/p95/p99 service latency, cache hit rates and the mean
//! per-stage breakdown.
//!
//! Besides the human-readable table, every run writes a machine-readable
//! `BENCH_serve.json` (override with `--json PATH`) so CI and later PRs
//! can track the perf trajectory.
//!
//! Usage:
//! ```text
//! serve_bench [--sessions N] [--requests N] [--concurrency N] [--k N]
//!             [--candidates N] [--shards N[,N...]]
//!             [--executor-threads N[,N...]] [--fleet N[,N...]]
//!             [--max-queue N] [--max-queue-wait-us N] [--deadline-us N]
//!             [--no-cache] [--no-surrogate-cache] [--tail-report N]
//!             [--swap-every N] [--json PATH]
//! ```
//! Defaults: 4000 sessions, 2000 requests, 8 workers, k=10, 100
//! candidates, 1 index shard, no executor, no fleet, unbounded queue,
//! no deadline, both caches on, no tail report, no swaps, JSON to
//! `BENCH_serve.json`.
//!
//! Every row also carries the engine's per-stage latency *histograms*
//! (`stage_*_p50_us`/`stage_*_p99_us` from `serpdiv_serve`'s log-bucketed
//! [`LatencyHistogram`](serpdiv_serve::LatencyHistogram), ≤ 12.5%
//! quantization above 16 µs) so the tail can be attributed to a stage,
//! not just observed end to end. `--tail-report N` additionally prints,
//! per algorithm replay, the N slowest requests with their full
//! per-stage breakdown and query text — the "which requests, doing
//! what" view the aggregate percentiles cannot give.
//!
//! `--shards` takes a comma-separated list (e.g. `--shards 1,2,4,8`) and
//! replays the whole per-algorithm suite once per shard count, emitting
//! every `(shards, algorithm)` pair into the JSON report so the
//! shard-scaling curve is machine-readable.
//!
//! `--executor-threads` sweeps the persistent scatter-scoring pool the
//! same way: for every listed size ≥ 1 (and every sharded entry of
//! `--shards`), ONE `ScoringExecutor` of that size is shared by all five
//! algorithm engines, the scatter threshold is dropped to 0 so every
//! retrieval rides the pool, and each `(shards, executor_threads,
//! algorithm)` row lands in the JSON with its `qps` and
//! `stage_retrieve_p50_us`. `0` (the default) keeps the per-query
//! scoped-thread/sequential heuristic; combinations with 1 shard are
//! skipped for sizes ≥ 1 (nothing to scatter).
//!
//! `--fleet` adds multi-*process* sweep points: for every listed N ≥ 1
//! the index is exported into N shard artifacts, N real `shard_worker`
//! processes are spawned on local sockets, and the whole per-algorithm
//! suite is replayed through a [`FleetRouter`] — the same requests the
//! in-process rows serve, now crossing a process boundary per shard.
//! Fleet rows carry `"fleet": N` in the JSON (in-process rows carry
//! `"fleet": 0`); every row also reports `queue_wait_p50_us` /
//! `queue_wait_p99_us`, the pool's enqueue→pickup saturation signal.
//! The `shard_worker` binary is looked up next to the bench executable
//! (override with `SERPDIV_SHARD_WORKER_BIN`); build it first with
//! `cargo build --release -p serpdiv-fleet`.
//!
//! `--swap-every N` measures the serving cost of generation hot swaps:
//! while each algorithm's replay runs, a deployer thread republishes the
//! engine's whole serving generation (epoch pointer swap through the
//! full validate-then-publish path) every N served requests. Every row
//! then reports `generation` (the id serving when the replay ended),
//! `swaps`, `swap_rejected`, and `swap_p99_us` (p99 publish latency) —
//! the "hot swaps are free for readers" claim becomes a measured QPS
//! delta against a `--swap-every 0` baseline. The result cache is
//! generation-tagged, but each publish runs the carry-over pass: entries
//! whose bytes are provably unchanged under the new generation are
//! re-tagged instead of cold-missed, and every row reports the
//! `carried_over` / `carry_skipped` counters so the refill saved by
//! carry-over is machine-readable. Compare swap overhead with
//! `--no-cache` to isolate the epoch machinery from cache refill.
//!
//! `--max-queue` / `--max-queue-wait-us` bound the worker-pool queue
//! (admission control): overflow requests are shed in O(µs) instead of
//! convoying, and every row reports the `shed` count plus the shed-reply
//! latency p50 so the "rejection must be cheap" property is measurable
//! under saturation. `--deadline-us` arms the per-request compute budget
//! (deadline degradation). `--hedge-pct N` arms the worker pool's hedged
//! re-dispatch at N% of the per-class EWMA service estimate (0 = off);
//! rows report the in-process `pool_hedges` count. Fleet rows
//! additionally report `hedged` (hedged shard exchanges) and
//! `breaker_open` (circuit-breaker trips) observed during that row's
//! replay; in-process rows carry zeros.

use serpdiv_bench::{Lab, LabConfig};
use serpdiv_core::{AlgorithmKind, CompiledSpecStore, SpecializationStore};
use serpdiv_fleet::{FleetConfig, FleetRouter};
use serpdiv_index::{
    ForwardIndex, InvertedIndex, Retriever, ScoringExecutor, SearchEngine as DphEngine,
    ShardedIndex,
};
use serpdiv_mining::json::{write_escaped, write_number};
use serpdiv_serve::{AdmissionPolicy, EngineConfig, QueryRequest, SearchEngine, WorkerPool};
use std::path::PathBuf;
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    sessions: usize,
    requests: usize,
    concurrency: usize,
    k: usize,
    candidates: usize,
    shards: Vec<usize>,
    executor_threads: Vec<usize>,
    fleet: Vec<usize>,
    max_queue: usize,
    max_queue_wait_us: u64,
    deadline_us: u64,
    /// Worker-pool hedged re-dispatch threshold in percent of the class
    /// EWMA (0 = hedging off).
    hedge_pct: u64,
    cache: bool,
    surrogate_cache: bool,
    /// Print the N slowest requests of every algorithm replay with their
    /// per-stage breakdown (0 = off).
    tail_report: usize,
    /// Republish the serving generation every N served requests during
    /// each replay (0 = no swaps).
    swap_every: usize,
    json_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 4_000,
        requests: 2_000,
        concurrency: 8,
        k: 10,
        candidates: 100,
        shards: vec![1],
        executor_threads: vec![0],
        fleet: Vec::new(),
        max_queue: 0,
        max_queue_wait_us: 0,
        deadline_us: 0,
        hedge_pct: 0,
        cache: true,
        surrogate_cache: true,
        tail_report: 0,
        swap_every: 0,
        json_path: "BENCH_serve.json".to_string(),
    };
    let usage = "usage: serve_bench [--sessions N] [--requests N] [--concurrency N] \
                 [--k N] [--candidates N] [--shards N[,N...]] \
                 [--executor-threads N[,N...]] [--fleet N[,N...]] [--max-queue N] \
                 [--max-queue-wait-us N] [--deadline-us N] [--hedge-pct N] \
                 [--no-cache] [--no-surrogate-cache] [--tail-report N] \
                 [--swap-every N] [--json PATH]";
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next_str = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs an argument\n{usage}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = parse_num(&next_str("--sessions"), usage),
            "--requests" => args.requests = parse_num(&next_str("--requests"), usage),
            "--concurrency" => args.concurrency = parse_num(&next_str("--concurrency"), usage),
            "--k" => args.k = parse_num(&next_str("--k"), usage),
            "--candidates" => args.candidates = parse_num(&next_str("--candidates"), usage),
            "--shards" => {
                // split(',') yields at least one element and parse_num
                // rejects empty/invalid ones, so the list is never empty.
                args.shards = next_str("--shards")
                    .split(',')
                    .map(|v| parse_num(v, usage).max(1))
                    .collect();
            }
            "--executor-threads" => {
                args.executor_threads = next_str("--executor-threads")
                    .split(',')
                    .map(|v| parse_num(v, usage))
                    .collect();
            }
            "--fleet" => {
                args.fleet = next_str("--fleet")
                    .split(',')
                    .map(|v| parse_num(v, usage).max(1))
                    .collect();
            }
            "--max-queue" => args.max_queue = parse_num(&next_str("--max-queue"), usage),
            "--max-queue-wait-us" => {
                args.max_queue_wait_us = parse_num(&next_str("--max-queue-wait-us"), usage) as u64;
            }
            "--deadline-us" => {
                args.deadline_us = parse_num(&next_str("--deadline-us"), usage) as u64;
            }
            "--hedge-pct" => {
                args.hedge_pct = parse_num(&next_str("--hedge-pct"), usage) as u64;
            }
            "--no-cache" => args.cache = false,
            "--no-surrogate-cache" => args.surrogate_cache = false,
            "--tail-report" => args.tail_report = parse_num(&next_str("--tail-report"), usage),
            "--swap-every" => args.swap_every = parse_num(&next_str("--swap-every"), usage),
            "--json" => args.json_path = next_str("--json"),
            other => {
                eprintln!("error: unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if args.requests == 0 {
        eprintln!("error: --requests must be positive\n{usage}");
        std::process::exit(2);
    }
    if sweep_combos(&args).is_empty() {
        eprintln!(
            "error: the sweep is empty — --executor-threads ≥ 1 needs a sharded entry \
             (add a value ≥ 2 to --shards, or include 0 in --executor-threads)\n{usage}"
        );
        std::process::exit(2);
    }
    args
}

/// One point of the serving sweep: how the retrieval layer is deployed
/// for a full per-algorithm replay. `fleet == 0` means in-process
/// (`shards`/`executor_threads` as before); `fleet == N ≥ 1` means N
/// shard-worker *processes* behind a [`FleetRouter`].
#[derive(Clone, Copy)]
struct SweepPoint {
    shards: usize,
    executor_threads: usize,
    fleet: usize,
}

/// The combinations the sweep will run: executor sizes ≥ 1 only apply
/// to sharded in-process entries (nothing to scatter on one shard);
/// every `--fleet` entry adds one multi-process point after them.
fn sweep_combos(args: &Args) -> Vec<SweepPoint> {
    let mut combos: Vec<SweepPoint> = args
        .shards
        .iter()
        .flat_map(|&shards| {
            args.executor_threads
                .iter()
                .filter(move |&&threads| shards > 1 || threads == 0)
                .map(move |&threads| SweepPoint {
                    shards,
                    executor_threads: threads,
                    fleet: 0,
                })
        })
        .collect();
    combos.extend(args.fleet.iter().map(|&n| SweepPoint {
        shards: n,
        executor_threads: 0,
        fleet: n,
    }));
    combos
}

fn parse_num(v: &str, usage: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: expected a number, got {v:?}\n{usage}");
        std::process::exit(2);
    })
}

/// The `shard_worker` executable: `SERPDIV_SHARD_WORKER_BIN` if set,
/// otherwise next to this binary (both live in `target/<profile>/`).
fn shard_worker_bin() -> PathBuf {
    if let Ok(p) = std::env::var("SERPDIV_SHARD_WORKER_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("shard_worker");
    p
}

/// A live shard-worker fleet for one sweep point: N exported artifacts
/// on disk, N `shard_worker` processes on local sockets, one router.
/// Dropping it kills the workers and removes the scratch directory.
struct FleetDeployment {
    dir: PathBuf,
    children: Vec<Child>,
    router: Arc<FleetRouter>,
}

impl FleetDeployment {
    fn launch(index: Arc<InvertedIndex>, n: usize) -> FleetDeployment {
        let bin = shard_worker_bin();
        if !bin.is_file() {
            eprintln!(
                "error: shard_worker binary not found at {} — build it with \
                 `cargo build --release -p serpdiv-fleet` (or set SERPDIV_SHARD_WORKER_BIN)",
                bin.display()
            );
            std::process::exit(2);
        }
        let dir =
            std::env::temp_dir().join(format!("serpdiv-fleet-bench-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fleet scratch dir");
        // The same range partitioning the in-process rows use, exported
        // once per shard and handed to a real worker process.
        let sharded = ShardedIndex::build(index.clone(), n);
        let mut children = Vec::with_capacity(n);
        let mut sockets = Vec::with_capacity(n);
        for s in 0..n {
            let artifact = dir.join(format!("shard-{s}.bin"));
            let socket = dir.join(format!("shard-{s}.sock"));
            std::fs::write(&artifact, sharded.export_shard(s)).expect("write shard artifact");
            let child = std::process::Command::new(&bin)
                .arg("--artifact")
                .arg(&artifact)
                .arg("--socket")
                .arg(&socket)
                .spawn()
                .expect("spawn shard_worker");
            children.push(child);
            sockets.push(socket);
        }
        let router = Arc::new(FleetRouter::new(index, sockets, FleetConfig::default()));
        if let Err(e) = router.wait_ready(Duration::from_secs(30)) {
            eprintln!("error: fleet of {n} worker(s) never became ready: {e}");
            std::process::exit(1);
        }
        FleetDeployment {
            dir,
            children,
            router,
        }
    }
}

impl Drop for FleetDeployment {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1e3
}

/// Per-`(shard count, executor threads, fleet, algorithm)` results
/// destined for the JSON report.
struct AlgoReport {
    name: String,
    shards: usize,
    executor_threads: usize,
    /// Worker *processes* behind a `FleetRouter`; 0 for in-process rows.
    fleet: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hit_rate_pct: f64,
    surrogate_hit_rate_pct: f64,
    diversified_pct: f64,
    /// Median retrieve-stage microseconds over computed requests — the
    /// shard-scaling signal.
    retrieve_p50_us: f64,
    /// Median surrogate-stage microseconds over computed requests — the
    /// compiled-forward-index signal.
    surrogate_p50_us: f64,
    /// Enqueue→pickup wait in the worker pool (all requests) — the
    /// saturation signal the stage timings start too late to see.
    queue_wait_p50_us: f64,
    queue_wait_p99_us: f64,
    /// Pages served degraded because a shard was lost mid-gather.
    degraded_shard_loss: u64,
    /// Requests refused by worker-pool admission control (bounded queue
    /// or stale-at-pickup), answered with the cheap labeled shed reply.
    shed: u64,
    /// Median end-to-end latency of shed replies, microseconds — the
    /// "rejection must cost O(µs), not a deadline" signal. 0 when
    /// nothing was shed.
    shed_p50_us: f64,
    /// Hedged shard exchanges observed during this row's replay (fleet
    /// rows only; 0 in-process).
    hedged: u64,
    /// Circuit-breaker trips (open transitions) observed during this
    /// row's replay (fleet rows only; 0 in-process).
    breaker_open: u64,
    /// The generation id serving when the replay ended (1 when
    /// `--swap-every` is off).
    generation: u64,
    /// Generation hot swaps published during this row's replay.
    swaps: u64,
    /// Candidate generations refused by validate-then-publish.
    swap_rejected: u64,
    /// p99 publish latency of this row's swaps, microseconds (0 when no
    /// swaps ran).
    swap_p99_us: f64,
    /// Cache entries (result pages + surrogates) the carry-over pass
    /// re-tagged into freshly published generations during this replay.
    carried_over: u64,
    /// Old-generation entries the carry-over pass could not prove
    /// byte-unchanged.
    carry_skipped: u64,
    /// Worker-pool hedged re-dispatches during this replay (in-process
    /// hedging via `--hedge-pct`; distinct from the fleet's `hedged`).
    pool_hedges: u64,
    // Mean per-stage microseconds over computed requests.
    detect_us: u64,
    retrieve_us: u64,
    surrogate_us: u64,
    utility_us: u64,
    select_us: u64,
    /// Per-stage latency distributions from the engine's log-bucketed
    /// histograms (computed requests; queue wait and total over all
    /// pooled requests). Source of the `stage_*_p50_us`/`stage_*_p99_us`
    /// JSON fields that attribute a tail to a stage.
    latency: serpdiv_serve::StageLatencies,
}

fn write_json(path: &str, args: &Args, offline: &[(&str, f64)], algos: &[AlgoReport]) {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"config\": {");
    let config = [
        ("sessions", args.sessions as f64),
        ("requests", args.requests as f64),
        ("concurrency", args.concurrency as f64),
        ("k", args.k as f64),
        ("candidates", args.candidates as f64),
        ("result_cache", f64::from(u8::from(args.cache))),
        ("surrogate_cache", f64::from(u8::from(args.surrogate_cache))),
        ("max_queue", args.max_queue as f64),
        ("max_queue_wait_us", args.max_queue_wait_us as f64),
        ("deadline_us", args.deadline_us as f64),
        ("hedge_pct", args.hedge_pct as f64),
        ("swap_every", args.swap_every as f64),
    ];
    for (i, (key, v)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\": ");
        write_number(&mut out, *v);
    }
    out.push_str(", \"shards\": [");
    for (i, s) in args.shards.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_number(&mut out, *s as f64);
    }
    out.push_str("], \"executor_threads\": [");
    for (i, t) in args.executor_threads.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_number(&mut out, *t as f64);
    }
    out.push_str("], \"fleet\": [");
    for (i, n) in args.fleet.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_number(&mut out, *n as f64);
    }
    out.push_str("]},\n  \"offline\": {");
    for (i, (key, v)) in offline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\": ");
        write_number(&mut out, *v);
    }
    out.push_str("},\n  \"algorithms\": [");
    for (i, a) in algos.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"algorithm\": ");
        write_escaped(&mut out, &a.name);
        let fields = [
            ("shards", a.shards as f64),
            ("executor_threads", a.executor_threads as f64),
            ("fleet", a.fleet as f64),
            ("qps", a.qps),
            ("p50_ms", a.p50_ms),
            ("p95_ms", a.p95_ms),
            ("p99_ms", a.p99_ms),
            ("cache_hit_pct", a.hit_rate_pct),
            ("surrogate_hit_pct", a.surrogate_hit_rate_pct),
            ("diversified_pct", a.diversified_pct),
            ("stage_retrieve_p50_us", a.retrieve_p50_us),
            ("stage_surrogate_p50_us", a.surrogate_p50_us),
            ("queue_wait_p50_us", a.queue_wait_p50_us),
            ("queue_wait_p99_us", a.queue_wait_p99_us),
            ("degraded_shard_loss", a.degraded_shard_loss as f64),
            ("shed", a.shed as f64),
            ("shed_p50_us", a.shed_p50_us),
            ("hedged", a.hedged as f64),
            ("breaker_open", a.breaker_open as f64),
            ("generation", a.generation as f64),
            ("swaps", a.swaps as f64),
            ("swap_rejected", a.swap_rejected as f64),
            ("swap_p99_us", a.swap_p99_us),
            ("carried_over", a.carried_over as f64),
            ("carry_skipped", a.carry_skipped as f64),
            ("pool_hedges", a.pool_hedges as f64),
            ("stage_detect_us", a.detect_us as f64),
            ("stage_retrieve_us", a.retrieve_us as f64),
            ("stage_surrogate_us", a.surrogate_us as f64),
            ("stage_utility_us", a.utility_us as f64),
            ("stage_select_us", a.select_us as f64),
            // Histogram-derived per-stage percentiles (tail attribution).
            // retrieve/surrogate p50 keep their exact sorted-sample keys
            // above; the histogram adds the p99s and the other stages.
            ("stage_detect_p50_us", a.latency.detect.p50_us as f64),
            ("stage_detect_p99_us", a.latency.detect.p99_us as f64),
            ("stage_retrieve_p99_us", a.latency.retrieve.p99_us as f64),
            ("stage_surrogate_p99_us", a.latency.surrogate.p99_us as f64),
            ("stage_utility_p50_us", a.latency.utility.p50_us as f64),
            ("stage_utility_p99_us", a.latency.utility.p99_us as f64),
            ("stage_select_p50_us", a.latency.select.p50_us as f64),
            ("stage_select_p99_us", a.latency.select.p99_us as f64),
            ("total_hist_p99_us", a.latency.total.p99_us as f64),
            ("total_hist_max_us", a.latency.total.max_us as f64),
        ];
        for (key, v) in fields {
            out.push_str(", \"");
            out.push_str(key);
            out.push_str("\": ");
            write_number(&mut out, v);
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    println!(
        "serve_bench — {} requests/algorithm over {} workers (k={}, |Rq|={}, shards {:?}, fleet {:?}, cache {}, surrogate cache {})",
        args.requests,
        args.concurrency,
        args.k,
        args.candidates,
        args.shards,
        args.fleet,
        if args.cache { "on" } else { "off" },
        if args.surrogate_cache { "on" } else { "off" },
    );

    // Offline stack: corpus, index, log, mined model (70/30 split).
    let t = Instant::now();
    let mut config = LabConfig::small();
    config.log.num_sessions = args.sessions;
    let lab = Lab::build(config);
    println!(
        "offline stack: {} docs, {} log records, {} ambiguous queries mined ({:.1}s)",
        lab.index.stats().num_docs,
        lab.train.len() + lab.test.len(),
        lab.model.len(),
        t.elapsed().as_secs_f64(),
    );

    // Deployment: shared immutable index/model, one §4.1 store, one
    // compiled inverted utility index.
    let t = Instant::now();
    let params = serpdiv_core::PipelineParams::default();
    let index = Arc::new(lab.index);
    let model = Arc::new(lab.model);
    let store = {
        let engine = DphEngine::new(&index);
        Arc::new(SpecializationStore::build(
            &model,
            &engine,
            params.k_spec_results,
            params.snippet_window,
        ))
    };
    let compiled = Arc::new(CompiledSpecStore::compile(&store));
    // One compiled forward index and one interned presentation table
    // shared by every engine (like the store and the retriever, a
    // deploy-time cost paid once).
    let t_fwd = Instant::now();
    let forward = Arc::new(ForwardIndex::build(&index));
    let presentation = SearchEngine::intern_presentation(&index);
    println!(
        "specialization store: {} specializations, {:.1} KiB raw, {:.1} KiB compiled \
         ({} terms, {} postings) ({:.2}s); forward index {:.1} KiB ({:.2}s)\n",
        store.len(),
        store.byte_size() as f64 / 1024.0,
        compiled.byte_size() as f64 / 1024.0,
        compiled.num_terms(),
        compiled.num_postings(),
        t.elapsed().as_secs_f64(),
        forward.byte_size() as f64 / 1024.0,
        t_fwd.elapsed().as_secs_f64(),
    );
    let offline = [
        ("docs", index.stats().num_docs as f64),
        ("specializations", store.len() as f64),
        ("store_bytes", store.byte_size() as f64),
        ("compiled_bytes", compiled.byte_size() as f64),
        ("forward_bytes", forward.byte_size() as f64),
        ("compiled_terms", compiled.num_terms() as f64),
        ("compiled_postings", compiled.num_postings() as f64),
    ];

    // The replayed session stream: test-split queries in time order.
    let queries: Vec<String> = lab
        .test
        .records()
        .iter()
        .map(|r| lab.test.query_text(r.query).expect("interned").to_string())
        .collect();
    assert!(!queries.is_empty(), "test split is empty; raise --sessions");

    let mut reports = Vec::new();
    for point in sweep_combos(&args) {
        let SweepPoint {
            shards,
            executor_threads,
            fleet,
        } = point;
        // One retriever per sweep point, shared by every algorithm's
        // engine (partitioning is a deploy-time cost, paid once) — and,
        // when the executor sweep is on, ONE persistent scoring pool
        // shared across all five engines and the request worker pool.
        // Fleet points instead export the shards and spawn real worker
        // processes; the deployment must outlive the whole replay.
        let t = Instant::now();
        let fleet_deployment = (fleet > 0).then(|| FleetDeployment::launch(index.clone(), fleet));
        let retriever: Arc<dyn Retriever> = if let Some(deployment) = &fleet_deployment {
            deployment.router.clone()
        } else if shards > 1 {
            let mut sharded = ShardedIndex::build(index.clone(), shards);
            if executor_threads > 0 {
                // Threshold 0: every retrieval rides the pool, so the
                // sweep measures the executor hand-off itself rather
                // than the heuristic dodging it on this small corpus.
                sharded = sharded
                    .with_executor(Arc::new(ScoringExecutor::new(executor_threads)))
                    .with_parallel_threshold(0);
            }
            Arc::new(sharded)
        } else {
            index.clone()
        };
        println!(
            "\n=== {shards} index shard(s), {} ({} in {:.2}s) ===",
            if fleet > 0 {
                format!("{fleet} shard-worker process(es) over local sockets")
            } else if executor_threads > 0 {
                format!("{executor_threads}-thread scoring executor")
            } else {
                "per-query scatter heuristic".to_string()
            },
            if fleet > 0 {
                "fleet booted"
            } else {
                "partitioned"
            },
            t.elapsed().as_secs_f64()
        );
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}  mean stage µs (det/retr/surr/util/sel)",
            "algorithm", "QPS", "p50 ms", "p95 ms", "p99 ms", "hit%", "divers%",
        );
        for algo in [
            AlgorithmKind::Baseline,
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            let engine = Arc::new(
                SearchEngine::with_retriever_and_forward(
                    index.clone(),
                    retriever.clone(),
                    model.clone(),
                    store.clone(),
                    compiled.clone(),
                    Some(forward.clone()),
                    EngineConfig {
                        n_candidates: args.candidates,
                        params,
                        cache_shards: 16,
                        cache_capacity: if args.cache { 8192 } else { 0 },
                        surrogate_cache_capacity: if args.surrogate_cache { 32_768 } else { 0 },
                        index_shards: shards,
                        executor_threads,
                        deadline_us: args.deadline_us,
                        forward_index: true,
                        slo: None,
                    },
                )
                .with_presentation(presentation.clone()),
            );
            let pool = WorkerPool::with_admission(
                engine.clone(),
                args.concurrency,
                AdmissionPolicy {
                    max_queue: args.max_queue,
                    max_queue_wait_us: args.max_queue_wait_us,
                    deadline_aware: false,
                    hedge_factor_pct: args.hedge_pct,
                },
            );
            let requests: Vec<QueryRequest> = (0..args.requests)
                .map(|i| QueryRequest::new(queries[i % queries.len()].clone(), args.k, algo))
                .collect();

            // Fleet telemetry is cumulative per router (shared across the
            // algorithms of one sweep point); per-row hedge/breaker counts
            // are before/after deltas around this row's replay.
            let fleet_before = fleet_deployment.as_ref().map(|d| d.router.metrics());
            // The deployer thread for --swap-every: republish the whole
            // serving generation (full validate-then-publish, new epoch
            // pointer) every N served requests while the replay runs.
            let swapping = Arc::new(std::sync::atomic::AtomicBool::new(args.swap_every > 0));
            let swapper = (args.swap_every > 0).then(|| {
                let engine = engine.clone();
                let swapping = swapping.clone();
                let every = args.swap_every as u64;
                std::thread::spawn(move || {
                    let mut swap_us: Vec<u64> = Vec::new();
                    // requests_served is one atomic load — the poll must
                    // not pay a full histogram snapshot 5000×/s.
                    let mut last = engine.requests_served();
                    while swapping.load(std::sync::atomic::Ordering::Relaxed) {
                        let now = engine.requests_served();
                        if now.saturating_sub(last) >= every {
                            let t = Instant::now();
                            engine.republish().expect("republish");
                            swap_us.push(t.elapsed().as_micros() as u64);
                            last = now;
                        } else {
                            // 1 ms granularity: at benchmark request
                            // rates this still paces swaps within a few
                            // requests of the target, without the poll
                            // thread competing for the serving cores.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    swap_us
                })
            });
            let wall = Instant::now();
            let responses = pool.serve_batch(requests);
            let wall_s = wall.elapsed().as_secs_f64();
            swapping.store(false, std::sync::atomic::Ordering::Relaxed);
            let mut swap_us = swapper
                .map(|h| h.join().expect("swapper thread"))
                .unwrap_or_default();
            swap_us.sort_unstable();
            let (hedged, breaker_open) = match (&fleet_deployment, fleet_before) {
                (Some(d), Some(before)) => {
                    let after = d.router.metrics();
                    (
                        after.hedges - before.hedges,
                        after.breaker_trips - before.breaker_trips,
                    )
                }
                _ => (0, 0),
            };

            let mut totals: Vec<u64> = responses.iter().map(|r| r.timings.total_us).collect();
            totals.sort_unstable();
            let mut retrieves: Vec<u64> = responses
                .iter()
                .filter(|r| !r.cache_hit)
                .map(|r| r.timings.retrieve_us)
                .collect();
            retrieves.sort_unstable();
            // Diversified requests only: passthroughs finish at the
            // retrieve stage, and their structural 0µs surrogate samples
            // would dilute the compiled-path signal.
            let mut surrogates_us: Vec<u64> = responses
                .iter()
                .filter(|r| !r.cache_hit && r.diversified)
                .map(|r| r.timings.surrogate_us)
                .collect();
            surrogates_us.sort_unstable();
            // Queue wait is measured per pooled request, cache hits
            // included — saturation does not care what the worker does
            // once it picks the job up.
            let mut queue_waits_us: Vec<u64> =
                responses.iter().map(|r| r.timings.queue_wait_us).collect();
            queue_waits_us.sort_unstable();
            // Shed replies carry their end-to-end time in total_us; their
            // p50 is the "rejection costs O(µs)" measurement.
            let mut shed_totals_us: Vec<u64> = responses
                .iter()
                .filter(|r| r.algorithm == serpdiv_serve::LABEL_SHED)
                .map(|r| r.timings.total_us)
                .collect();
            shed_totals_us.sort_unstable();
            let qps = responses.len() as f64 / wall_s;
            let hit_rate = engine
                .cache()
                .map(|c| c.stats().hit_rate() * 100.0)
                .unwrap_or(0.0);
            let surrogate_hit_rate = engine
                .surrogate_cache()
                .map(|c| c.stats().hit_rate() * 100.0)
                .unwrap_or(0.0);
            let m = engine.metrics();
            let computed = (m.diversified + m.passthrough).max(1);
            let diversified_pct = 100.0 * responses.iter().filter(|r| r.diversified).count() as f64
                / responses.len() as f64;
            let report = AlgoReport {
                name: format!("{algo:?}"),
                shards,
                executor_threads,
                fleet,
                qps,
                p50_ms: percentile(&totals, 50.0),
                p95_ms: percentile(&totals, 95.0),
                p99_ms: percentile(&totals, 99.0),
                hit_rate_pct: hit_rate,
                surrogate_hit_rate_pct: surrogate_hit_rate,
                diversified_pct,
                retrieve_p50_us: percentile(&retrieves, 50.0) * 1e3,
                surrogate_p50_us: percentile(&surrogates_us, 50.0) * 1e3,
                queue_wait_p50_us: percentile(&queue_waits_us, 50.0) * 1e3,
                queue_wait_p99_us: percentile(&queue_waits_us, 99.0) * 1e3,
                degraded_shard_loss: m.degraded_shard_loss,
                shed: m.shed,
                shed_p50_us: percentile(&shed_totals_us, 50.0) * 1e3,
                hedged,
                breaker_open,
                generation: m.generation,
                swaps: m.swaps,
                swap_rejected: m.swap_rejected,
                swap_p99_us: percentile(&swap_us, 99.0) * 1e3,
                carried_over: m.carried_over,
                carry_skipped: m.carry_skipped,
                pool_hedges: m.hedges,
                detect_us: m.stage_sums.detect_us / computed,
                retrieve_us: m.stage_sums.retrieve_us / computed,
                surrogate_us: m.stage_sums.surrogate_us / computed,
                utility_us: m.stage_sums.utility_us / computed,
                select_us: m.stage_sums.select_us / computed,
                latency: m.latency,
            };
            println!(
                "{:<10} {:>9.0} {:>9.3} {:>9.3} {:>9.3} {:>7.1} {:>7.1}  {}/{}/{}/{}/{} (retr p50 {:.0}µs, surr p50 {:.0}µs)",
                report.name,
                report.qps,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                report.hit_rate_pct,
                report.diversified_pct,
                report.detect_us,
                report.retrieve_us,
                report.surrogate_us,
                report.utility_us,
                report.select_us,
                report.retrieve_p50_us,
                report.surrogate_p50_us,
            );
            if report.shed > 0 {
                println!(
                    "           {} shed (p50 {:.0}µs) of {} requests",
                    report.shed,
                    report.shed_p50_us,
                    responses.len(),
                );
            }
            if report.swaps > 0 || report.swap_rejected > 0 {
                println!(
                    "           {} generation swaps ({} rejected, publish p99 {:.0}µs), serving generation {} at replay end; carry-over kept {} cache entries, skipped {}",
                    report.swaps,
                    report.swap_rejected,
                    report.swap_p99_us,
                    report.generation,
                    report.carried_over,
                    report.carry_skipped,
                );
            }
            if report.pool_hedges > 0 {
                println!(
                    "           {} hedged re-dispatches (pool, {}% of class EWMA)",
                    report.pool_hedges, args.hedge_pct,
                );
            }
            if args.tail_report > 0 {
                // The N slowest requests with their full per-stage
                // breakdown: which requests make the tail, and where
                // their time actually went. A large queue/total gap with
                // small stage sums is scheduler/queueing delay, not
                // compute.
                let mut slowest: Vec<&serpdiv_serve::SearchResponse> = responses.iter().collect();
                slowest.sort_by_key(|r| std::cmp::Reverse(r.timings.total_us));
                println!(
                    "           tail report — {} slowest of {} ({}):",
                    args.tail_report.min(slowest.len()),
                    slowest.len(),
                    report.name,
                );
                println!(
                    "           {:>9} {:>8} {:>5} {:>7} {:>7} {:>7} {:>6}  query",
                    "total ms", "queue µs", "det", "retr", "surr", "util", "sel",
                );
                for r in slowest.iter().take(args.tail_report) {
                    let t = &r.timings;
                    let tag = if r.cache_hit {
                        " [cache hit]"
                    } else if !r.diversified {
                        " [passthrough]"
                    } else {
                        ""
                    };
                    println!(
                        "           {:>9.3} {:>8} {:>5} {:>7} {:>7} {:>7} {:>6}  {:?}{tag}",
                        t.total_us as f64 / 1e3,
                        t.queue_wait_us,
                        t.detect_us,
                        t.retrieve_us,
                        t.surrogate_us,
                        t.utility_us,
                        t.select_us,
                        r.query,
                    );
                }
            }
            reports.push(report);
        }
        if let Some(deployment) = &fleet_deployment {
            let fm = deployment.router.metrics();
            println!(
                "fleet health: {} gathers, {} partial, {} shard failures, {} timeouts, \
                 {} reconnects, {} hedges, {} breaker trips, {} breaker fast-fails",
                fm.requests,
                fm.partial_gathers,
                fm.shard_failures,
                fm.shard_timeouts,
                fm.reconnects,
                fm.hedges,
                fm.breaker_trips,
                fm.breaker_fast_fails
            );
        }
    }
    println!("\n(per-stage means are over computed — non-cache-hit — requests)");
    write_json(&args.json_path, &args, &offline, &reports);
}
