//! Synthetic selection workloads for the efficiency experiments.
//!
//! §4 of the paper: "We consider diversification to be done on a set of
//! |Rq| = n results returned by the baseline retrieval algorithm.
//! Furthermore, we consider |Sq| ... to be a constant (indeed, it is
//! usually a small value depending on q)." The efficiency measurements time
//! the *selection* phase — the paper's cost model counts marginal-utility
//! updates and heap operations, with the utilities `Ũ(d|R_q′)` as inputs —
//! so the workload generates [`DiversifyInput`]s directly: per-candidate
//! relevance, per-specialization probabilities, and a sparse utility
//! pattern in which each document serves mainly one interpretation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serpdiv_core::{DiversifyInput, UtilityMatrix};

/// Workload shape.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Candidates per query (`|Rq| = n`).
    pub n: usize,
    /// Minimum specializations per query.
    pub min_specs: usize,
    /// Maximum specializations per query (TREC topics: 3–8).
    pub max_specs: usize,
    /// Probability a candidate is also useful for a second specialization.
    pub p_secondary: f64,
    /// Seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The Table 2 shape for a given `n`.
    pub fn table2(n: usize) -> Self {
        WorkloadConfig {
            n,
            min_specs: 3,
            max_specs: 8,
            p_secondary: 0.15,
            seed: 0x7AB2,
        }
    }
}

/// A sequence of per-query [`DiversifyInput`]s (the "50 queries of the
/// TREC 2009 Web Track" of Table 2's caption).
#[derive(Debug)]
pub struct SelectionWorkload {
    /// One input per query.
    pub queries: Vec<DiversifyInput>,
}

impl SelectionWorkload {
    /// Generate `num_queries` inputs with the given shape.
    pub fn generate(cfg: WorkloadConfig, num_queries: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = (0..num_queries)
            .map(|_| Self::one_query(&cfg, &mut rng))
            .collect();
        SelectionWorkload { queries }
    }

    fn one_query(cfg: &WorkloadConfig, rng: &mut StdRng) -> DiversifyInput {
        let m = rng.gen_range(cfg.min_specs..=cfg.max_specs);
        // Zipf-ish specialization popularity, normalized.
        let raw: Vec<f64> = (0..m).map(|j| 1.0 / (j + 1) as f64).collect();
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();

        let mut values = vec![0.0f64; cfg.n * m];
        for i in 0..cfg.n {
            // Primary specialization ∝ popularity.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut primary = m - 1;
            for (j, &p) in probs.iter().enumerate() {
                acc += p;
                if u <= acc {
                    primary = j;
                    break;
                }
            }
            values[i * m + primary] = rng.gen_range(0.2..1.0);
            if m > 1 && rng.gen_bool(cfg.p_secondary) {
                let mut second = rng.gen_range(0..m);
                if second == primary {
                    second = (second + 1) % m;
                }
                values[i * m + second] = rng.gen_range(0.05..0.5);
            }
        }
        let relevance: Vec<f64> = (0..cfg.n).map(|_| rng.gen_range(0.0..1.0)).collect();
        DiversifyInput::new(
            probs,
            relevance,
            UtilityMatrix::from_values(cfg.n, m, values),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let w = SelectionWorkload::generate(WorkloadConfig::table2(500), 10);
        assert_eq!(w.queries.len(), 10);
        for q in &w.queries {
            assert_eq!(q.num_candidates(), 500);
            assert!((3..=8).contains(&q.num_specializations()));
            let p: f64 = q.spec_probs.iter().sum();
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let a = SelectionWorkload::generate(WorkloadConfig::table2(100), 3);
        let b = SelectionWorkload::generate(WorkloadConfig::table2(100), 3);
        assert_eq!(a.queries[0].relevance, b.queries[0].relevance);
        assert_eq!(a.queries[2].spec_probs, b.queries[2].spec_probs);
    }

    #[test]
    fn utilities_are_sparse() {
        let w = SelectionWorkload::generate(WorkloadConfig::table2(1000), 2);
        for q in &w.queries {
            let m = q.num_specializations();
            let nonzero: usize = (0..q.num_candidates())
                .map(|i| q.utilities.row(i).iter().filter(|&&v| v > 0.0).count())
                .sum();
            // ≈ 1.15 nonzeros per candidate, far fewer than n·m.
            assert!(nonzero < q.num_candidates() * 2);
            assert!(nonzero >= q.num_candidates());
            let _ = m;
        }
    }

    #[test]
    fn algorithms_run_on_workload() {
        use serpdiv_core::{Diversifier, IaSelect, OptSelect, XQuad};
        let w = SelectionWorkload::generate(WorkloadConfig::table2(200), 2);
        for q in &w.queries {
            for sel in [
                OptSelect::new().select(q, 20),
                IaSelect::new().select(q, 20),
                XQuad::new().select(q, 20),
            ] {
                assert_eq!(sel.len(), 20);
            }
        }
    }
}
