//! Benchmark harness — regenerates every table and figure of the paper.
//!
//! Library side: the synthetic selection workload (Table 1/2) and the
//! shared end-to-end laboratory (Table 3, Figure 1, recall, footprint).
//! The binaries under `src/bin/` print the corresponding paper artifacts;
//! criterion micro-benches live under `benches/`.
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table1_complexity`   | Table 1 (empirical scaling fits) |
//! | `table2_efficiency`   | Table 2 (selection time grid) |
//! | `table3_effectiveness`| Table 3 (α-NDCG / IA-P sweep over c) |
//! | `figure1_utility`     | Figure 1 (avg utility vs |Sq|, AOL & MSN) |
//! | `recall_coverage`     | App. C recall (61% AOL / 65% MSN) |
//! | `footprint`           | §4.1 memory budget |
//! | `ablation_lambda`     | λ sweep (ours) |
//! | `ablation_heap`       | heap vs full-sort OptSelect (ours) |

pub mod lab;
pub mod timing;
pub mod workload;

pub use lab::{Lab, LabConfig};
pub use timing::{time_median_ms, Timed};
pub use workload::{SelectionWorkload, WorkloadConfig};
