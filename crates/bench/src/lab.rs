//! The shared end-to-end laboratory.
//!
//! Table 3, Figure 1, the recall measure and the footprint budget all need
//! the same scaffolding: a testbed (corpus + topics + qrels), its inverted
//! index, a synthetic query log split 70/30 into train/test, and the
//! specialization model mined from the training log through the full §3
//! stack (timeout sessions → query-flow graph → logical sessions →
//! shortcuts recommender → Algorithm 1). [`Lab::build`] runs that stack
//! once; the binaries construct their engines/pipelines on top.

use serpdiv_corpus::{Testbed, TestbedConfig};
use serpdiv_index::{InvertedIndex, SearchEngine};
use serpdiv_mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv_querylog::{
    split_sessions, FreqTable, GroundTruth, LogConfig, QueryLog, QueryLogGenerator,
};

/// Laboratory configuration.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Corpus/topics shape.
    pub testbed: TestbedConfig,
    /// Query-log generator preset.
    pub log: LogConfig,
    /// Suggestion-list truncation for the shortcuts model.
    pub shortcuts_max: usize,
    /// Algorithm 1's popularity divisor `s`.
    pub detector_s: f64,
    /// Chaining-probability threshold for logical-session extraction.
    pub qfg_threshold: f64,
    /// Train fraction of the 70/30 split (Appendix C).
    pub train_fraction: f64,
}

impl LabConfig {
    /// Small configuration for tests and quick runs.
    pub fn small() -> Self {
        LabConfig {
            testbed: TestbedConfig::small(),
            log: LogConfig::tiny(),
            shortcuts_max: 16,
            detector_s: 10.0,
            qfg_threshold: 0.001,
            train_fraction: 0.7,
        }
    }

    /// The Table 3 configuration: TREC-shaped testbed, AOL-like log.
    pub fn trec(log_sessions: usize) -> Self {
        LabConfig {
            testbed: TestbedConfig::trec_scaled(),
            log: LogConfig::aol_like(log_sessions),
            shortcuts_max: 32,
            detector_s: 20.0,
            qfg_threshold: 0.001,
            train_fraction: 0.7,
        }
    }
}

/// The built laboratory.
pub struct Lab {
    /// Configuration used.
    pub config: LabConfig,
    /// Corpus, topics and qrels.
    pub testbed: Testbed,
    /// The inverted index over the corpus.
    pub index: InvertedIndex,
    /// Training log (first 70%).
    pub train: QueryLog,
    /// Test log (last 30%).
    pub test: QueryLog,
    /// Ground-truth annotation of the *full* log's queries (shared
    /// interning with both splits).
    pub truth: GroundTruth,
    /// The mined specialization model (from the training log only).
    pub model: SpecializationModel,
}

impl Lab {
    /// Run the full offline stack.
    pub fn build(config: LabConfig) -> Self {
        let testbed = Testbed::generate(config.testbed.clone());
        let index = testbed.build_index();

        let generator =
            QueryLogGenerator::new(config.log.clone(), &testbed.topics, &testbed.background);
        let (log, truth) = generator.generate();
        let (train, test) = log.split_train_test(config.train_fraction);

        // §3: physical sessions → QFG → logical sessions → recommender →
        // Algorithm 1 sweep.
        let physical = split_sessions(&train);
        let qfg = QueryFlowGraph::build(&train, &physical);
        let logical = qfg.extract_logical_sessions(&train, &physical, config.qfg_threshold);
        let shortcuts = ShortcutsModel::train(&train, &logical, config.shortcuts_max);
        let freq = FreqTable::build(&train);
        let detector = AmbiguityDetector::new(&shortcuts, &freq, config.detector_s);
        let model = SpecializationModel::mine(&train, &detector);

        Lab {
            config,
            testbed,
            index,
            train,
            test,
            truth,
            model,
        }
    }

    /// A DPH engine over the lab's index.
    pub fn engine(&self) -> SearchEngine<'_> {
        SearchEngine::new(&self.index)
    }

    /// Fraction of ground-truth-ambiguous topic queries the mined model
    /// detected (mining quality diagnostic).
    pub fn detection_rate(&self) -> f64 {
        let total = self.testbed.topics.len();
        if total == 0 {
            return 0.0;
        }
        let detected = self
            .testbed
            .topics
            .iter()
            .filter(|t| self.model.get(&t.query).is_some())
            .count();
        detected as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        let mut cfg = LabConfig::small();
        cfg.testbed.num_topics = 5;
        cfg.testbed.docs_per_subtopic = 8;
        cfg.testbed.noise_docs = 100;
        cfg.log.num_sessions = 1500;
        Lab::build(cfg)
    }

    #[test]
    fn mines_most_topic_queries() {
        let lab = lab();
        let rate = lab.detection_rate();
        assert!(
            rate >= 0.6,
            "expected most ambiguous topics detected, got {rate}"
        );
    }

    #[test]
    fn model_probabilities_follow_subtopic_weights() {
        let lab = lab();
        // For the most popular topic (Zipf rank 0), the top mined
        // specialization must be the heaviest subtopic.
        let topic = &lab.testbed.topics[0];
        let Some(entry) = lab.model.get(&topic.query) else {
            panic!("top topic should be detected");
        };
        assert_eq!(entry.specializations[0].0, topic.subtopics[0].query);
    }

    #[test]
    fn train_test_split_fractions() {
        let lab = lab();
        let total = lab.train.len() + lab.test.len();
        let frac = lab.train.len() as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.02, "got {frac}");
    }
}
