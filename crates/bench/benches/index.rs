//! Criterion micro-benchmarks of the IR substrate: index construction and
//! DPH top-k retrieval over a testbed-sized collection.

use criterion::{criterion_group, criterion_main, Criterion};
use serpdiv_corpus::{Testbed, TestbedConfig};
use serpdiv_index::SearchEngine;

fn bench_index(c: &mut Criterion) {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 10;
    cfg.docs_per_subtopic = 20;
    cfg.noise_docs = 500;
    let testbed = Testbed::generate(cfg);

    let mut group = c.benchmark_group("index");
    group.sample_size(10);
    group.bench_function("build", |b| {
        b.iter(|| testbed.build_index());
    });

    let index = testbed.build_index();
    let engine = SearchEngine::new(&index);
    let queries: Vec<String> = testbed.topics.iter().map(|t| t.query.clone()).collect();
    group.bench_function("search_top100", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            engine.search(q, 100)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
