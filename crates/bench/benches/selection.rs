//! Criterion micro-benchmarks of the three selection algorithms —
//! the statistical companion of Table 2's wall-clock grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serpdiv_bench::{SelectionWorkload, WorkloadConfig};
use serpdiv_core::{Diversifier, IaSelect, OptSelect, XQuad};

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let workload = SelectionWorkload::generate(WorkloadConfig::table2(n), 1);
        let input = &workload.queries[0];
        for &k in &[10usize, 100] {
            group.bench_with_input(
                BenchmarkId::new("OptSelect", format!("n{n}_k{k}")),
                &(input, k),
                |b, (input, k)| {
                    let algo = OptSelect::new();
                    b.iter(|| algo.select(input, *k));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("xQuAD", format!("n{n}_k{k}")),
                &(input, k),
                |b, (input, k)| {
                    let algo = XQuad::new();
                    b.iter(|| algo.select(input, *k));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("IASelect", format!("n{n}_k{k}")),
                &(input, k),
                |b, (input, k)| {
                    let algo = IaSelect::new();
                    b.iter(|| algo.select(input, *k));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
