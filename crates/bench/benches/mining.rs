//! Criterion micro-benchmarks of the mining stack: session splitting,
//! query-flow-graph construction and shortcuts training.

use criterion::{criterion_group, criterion_main, Criterion};
use serpdiv_corpus::{Testbed, TestbedConfig};
use serpdiv_mining::{QueryFlowGraph, ShortcutsModel};
use serpdiv_querylog::{split_sessions, LogConfig, QueryLogGenerator};

fn bench_mining(c: &mut Criterion) {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 10;
    cfg.docs_per_subtopic = 5;
    cfg.noise_docs = 50;
    let testbed = Testbed::generate(cfg);
    let gen = QueryLogGenerator::new(
        LogConfig::aol_like(5_000),
        &testbed.topics,
        &testbed.background,
    );
    let (log, _) = gen.generate();

    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    group.bench_function("split_sessions_5k", |b| {
        b.iter(|| split_sessions(&log));
    });
    let sessions = split_sessions(&log);
    group.bench_function("qfg_build_5k", |b| {
        b.iter(|| QueryFlowGraph::build(&log, &sessions));
    });
    group.bench_function("shortcuts_train_5k", |b| {
        b.iter(|| ShortcutsModel::train(&log, &sessions, 16));
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
