//! Criterion micro-benchmarks of the utility computation (Definition 2):
//! cosine over sparse surrogates and full utility-matrix assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serpdiv_core::{CompiledSpecStore, UtilityMatrix, UtilityParams};
use serpdiv_index::{cosine, SparseVector};
use serpdiv_text::TermId;

fn make_vector(seed: u64, nnz: usize, vocab: u32) -> SparseVector {
    // Simple LCG so the bench has no rand dependency in the hot path.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    SparseVector::from_pairs((0..nnz).map(|_| {
        let t = (next() % u64::from(vocab)) as u32;
        let w = (next() % 1000) as f32 / 100.0 + 0.1;
        (TermId(t), w)
    }))
}

fn bench_cosine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine");
    for &nnz in &[10usize, 50, 200] {
        let a = make_vector(1, nnz, 5_000);
        let b = make_vector(2, nnz, 5_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(nnz),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| cosine(a, b));
            },
        );
    }
    group.finish();
}

fn bench_utility_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("utility_matrix");
    group.sample_size(10);
    // 500 candidates × 5 specializations × 20 results each — the Table 3
    // per-query workload shape.
    let candidates: Vec<SparseVector> = (0..500).map(|i| make_vector(i, 25, 5_000)).collect();
    let specs: Vec<Vec<SparseVector>> = (0..5)
        .map(|s| {
            (0..20)
                .map(|r| make_vector(1_000 + s * 20 + r, 25, 5_000))
                .collect()
        })
        .collect();
    group.bench_function("500x5x20", |b| {
        b.iter(|| UtilityMatrix::compute(&candidates, &specs, UtilityParams::default()));
    });
    group.finish();
}

fn bench_utility_matrix_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("utility_matrix_compiled");
    // Same workload shape as `utility_matrix`, through the inverted
    // utility index (per-request scorer build included).
    let candidates: Vec<SparseVector> = (0..500).map(|i| make_vector(i, 25, 5_000)).collect();
    let specs: Vec<(String, Vec<SparseVector>)> = (0..5)
        .map(|s| {
            let list = (0..20)
                .map(|r| make_vector(1_000 + s * 20 + r, 25, 5_000))
                .collect();
            (format!("spec{s}"), list)
        })
        .collect();
    let compiled = CompiledSpecStore::build(
        specs
            .iter()
            .map(|(name, list)| (name.as_str(), list.iter())),
    );
    let names: Vec<&str> = specs.iter().map(|(n, _)| n.as_str()).collect();
    group.bench_function("500x5x20", |b| {
        b.iter(|| {
            let scorer = compiled.scorer(names.iter().copied());
            scorer.matrix(&candidates, UtilityParams::default())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cosine,
    bench_utility_matrix,
    bench_utility_matrix_compiled
);
criterion_main!(benches);
