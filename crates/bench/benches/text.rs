//! Criterion micro-benchmarks of the text pipeline: Porter stemming and
//! full analysis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use serpdiv_text::{porter_stem, Analyzer};

const SAMPLE: &str = "Diversification of web search results is a hot research \
topic nowadays because queries are often ambiguous and have more than one \
possible interpretation; search engines should produce results covering all \
the different interpretations of the query maximizing the probability of \
satisfying the users expectations";

fn bench_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("text");
    group.bench_function("porter_stem", |b| {
        let words: Vec<&str> = SAMPLE.split_whitespace().collect();
        let mut i = 0usize;
        b.iter(|| {
            let w = words[i % words.len()];
            i += 1;
            porter_stem(w)
        });
    });
    group.bench_function("analyze_paragraph", |b| {
        let analyzer = Analyzer::english();
        b.iter(|| analyzer.analyze(SAMPLE));
    });
    group.finish();
}

criterion_group!(benches, bench_text);
criterion_main!(benches);
