//! Offline stand-in for the `serde` facade: re-exports the no-op derive
//! macros from the local `serde_derive` shim so `use serde::{Deserialize,
//! Serialize}` plus `#[derive(...)]` compile without crates.io access.
//! See `shims/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
