//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! annotations deploy unchanged once the real `serde` is available, but the
//! build environment has no crates.io access. Serialization that the code
//! actually exercises (the specialization model's JSON, the index's binary
//! format) is hand-written; these derive macros therefore only need to
//! *accept* the annotations, including `#[serde(...)]` helper attributes,
//! and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
