//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external APIs it needs as small local crates under
//! `shims/`. This one provides [`rngs::StdRng`], [`Rng`], [`SeedableRng`]
//! and [`seq::SliceRandom`] with the same call signatures the real crate
//! exposes, backed by a SplitMix64/xoshiro256++ generator.
//!
//! The stream of values differs from the real `StdRng` (which is ChaCha12);
//! workspace code only relies on *same-seed reproducibility* and
//! distributional quality, never on golden values, so this is a faithful
//! drop-in for every use site.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (integers and `f64`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        // Uniform over [lo, hi); hi itself has measure zero for floats, so
        // this stays within the closed range's bounds (the real rand crate
        // also reaches hi only through rounding).
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draw a value of type `T` (uniform over its natural domain; `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Drop-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64
    /// (the seeding procedure recommended by the xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.
    use super::{RngCore, SampleUniform};

    /// Slice shuffling and choosing (the subset of the real trait in use).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0..=0.75f64);
            assert!((0.0..=0.75).contains(&g));
        }
        // Degenerate inclusive float range.
        assert_eq!(rng.gen_range(0.5..=0.5f64), 0.5);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples must reach both tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = heads as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..10).all(|_| !rng.gen_bool(0.0)));
        assert!((0..10).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
