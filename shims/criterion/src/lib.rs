//! Offline stand-in for the `criterion` benchmark harness API used by the
//! benches under `crates/bench/benches/`. Implements the same surface —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], the [`Bencher`] with
//! `iter`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. `cargo bench` therefore runs end-to-end and
//! prints one median line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing handle handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&out);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().unwrap();
    println!(
        "{label:<50} median {median:>10.4} ms  (min {min:.4}, max {max:.4}, n={})",
        b.samples.len()
    );
}

/// Hide a value from the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
