//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`BytesMut`] as an append-only encode buffer, [`Bytes`] as the
//! cheaply-cloneable frozen form, and the [`Buf`]/[`BufMut`] traits with
//! the little-endian accessors the index serializer calls. Built on
//! `Vec<u8>`/`Arc<[u8]>`; the on-the-wire layout is identical to the real
//! crate because these are plain LE byte writes.

use std::ops::Deref;
use std::sync::Arc;

/// Write-side abstraction (append primitives).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Read-side abstraction over a shrinking byte window.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Drop the first `n` bytes of the window.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }
}

/// Growable byte buffer (encode side).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
        }
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable shared byte buffer; `Clone` is a reference-count bump.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::from(Vec::new().into_boxed_slice()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"hi");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r, b"hi");
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_from_vec_and_clone_share() {
        let b: Bytes = vec![1u8, 2, 3].into();
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::default().is_empty());
    }
}
