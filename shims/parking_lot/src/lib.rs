//! Offline stand-in for the `parking_lot` synchronization API this
//! workspace uses. Wraps `std::sync` primitives and reproduces the
//! parking_lot ergonomics the call sites rely on: `lock()` returns the
//! guard directly (no poison `Result`) — a panicked holder does not poison
//! the lock for the rest of the process.

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// `Some(guard)` if the lock was free.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RwLock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared access, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Exclusive access, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
