//! Generation hot-swap integration: the epoch-publish machinery driven
//! end-to-end through the public engine API.
//!
//! Covered here (the adversarial swap-under-load race lives in
//! `tests/swap_soak.rs`):
//!
//! * a shipped artifact bundle (`InvertedIndex` + `ForwardIndex` +
//!   `CompiledSpecStore` images) decodes, validates, publishes, and
//!   serves the *new* corpus — while the pre-swap page stays bit-exact
//!   for the old generation's oracle;
//! * corrupt or truncated artifacts are **rejected with a counted
//!   `swap_rejected`** and the old generation keeps serving untouched;
//! * a stale (non-advancing) generation id is refused;
//! * the result cache is generation-tagged with provable carry-over: a
//!   swap whose artifacts leave a page byte-for-byte unchanged keeps it
//!   warm under the new generation, while any swap that could change a
//!   byte of it drops the entry and recomputes;
//! * NRT ingest accumulates across generations and `merge_delta` seals
//!   the delta into an index **bit-identical** to a from-scratch build;
//! * the [`BackgroundMerger`] seals a growing delta on its own.

use serpdiv::core::AlgorithmKind;
use serpdiv::index::{Document, ForwardIndex, IndexBuilder, InvertedIndex};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{EngineConfig, GenerationArtifacts, PublishError, QueryRequest, SearchEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base_docs() -> Vec<Document> {
    let mut docs = Vec::new();
    for i in 0..6u32 {
        docs.push(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera",
        ));
    }
    for i in 6..12u32 {
        docs.push(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe",
        ));
    }
    docs
}

fn storm_docs(range: std::ops::Range<u32>) -> Vec<Document> {
    range
        .map(|i| {
            Document::new(
                i,
                format!("http://storm/{i}"),
                "storm warning",
                "weather storm warning wind forecast emergency shelter",
            )
        })
        .collect()
}

fn build_index(docs: &[Document]) -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add(d.clone());
    }
    Arc::new(b.build())
}

fn model() -> Arc<SpecializationModel> {
    Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    )
}

fn config(cache_capacity: usize) -> EngineConfig {
    EngineConfig {
        n_candidates: 12,
        cache_capacity,
        ..EngineConfig::default()
    }
}

fn deploy(docs: &[Document], cache_capacity: usize) -> Arc<SearchEngine> {
    Arc::new(SearchEngine::deploy(
        build_index(docs),
        model(),
        config(cache_capacity),
    ))
}

/// Serialize a corpus into the artifact bundle a deploy pipeline ships:
/// index + forward images plus the serving engine's compiled spec store
/// (the model carries over on publish).
fn artifacts_for(engine: &SearchEngine, docs: &[Document], id: u64) -> GenerationArtifacts {
    let index = build_index(docs);
    GenerationArtifacts {
        id,
        index: index.to_bytes(),
        forward: Some(ForwardIndex::build(&index).to_bytes()),
        compiled: engine.compiled().to_bytes(),
    }
}

#[test]
fn published_artifacts_serve_the_new_corpus() {
    let engine = deploy(&base_docs(), 0);
    let before = engine.search(QueryRequest::new("storm", 5, AlgorithmKind::Baseline));
    assert_eq!(before.generation, 1);
    assert!(before.results.is_empty(), "old corpus has no storm docs");

    let mut grown = base_docs();
    grown.extend(storm_docs(12..16));
    let bundle = artifacts_for(&engine, &grown, 2);
    assert_eq!(engine.publish_artifacts(&bundle).unwrap(), 2);

    let after = engine.search(QueryRequest::new("storm", 5, AlgorithmKind::Baseline));
    assert_eq!(after.generation, 2);
    assert_eq!(after.results.len(), 4, "new docs retrievable post-swap");
    assert!(
        after
            .results
            .iter()
            .all(|r| r.url.starts_with("http://storm/")),
        "post-swap pages materialize the new generation's urls"
    );
    // The diversified path still works end-to-end on the swapped-in
    // generation (model + store carried over).
    let div = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
    assert!(div.diversified);
    assert_eq!(div.generation, 2);
    let m = engine.metrics();
    assert_eq!((m.swaps, m.swap_rejected, m.generation), (1, 0, 2));
}

#[test]
fn corrupt_artifacts_are_rejected_and_the_old_generation_serves() {
    let engine = deploy(&base_docs(), 0);
    let oracle = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));

    let mut grown = base_docs();
    grown.extend(storm_docs(12..16));
    let good = artifacts_for(&engine, &grown, 2);

    // Bad magic: the index image no longer starts with the format tag.
    let mut bad_magic = good.clone();
    bad_magic.index[0] ^= 0xFF;
    // Truncation: the compiled store image is cut mid-section.
    let mut truncated = good.clone();
    truncated.compiled.truncate(truncated.compiled.len() / 2);
    // Mid-buffer corruption in the forward image.
    let mut flipped = good.clone();
    let mid = flipped.forward.as_ref().unwrap().len() / 2;
    flipped.forward.as_mut().unwrap()[mid] ^= 0xA5;

    for (what, bundle) in [
        ("bad magic", &bad_magic),
        ("truncated", &truncated),
        ("flipped byte", &flipped),
    ] {
        match engine.publish_artifacts(bundle) {
            Err(PublishError::Decode(_)) => {}
            other => panic!("{what}: expected a decode rejection, got {other:?}"),
        }
        assert_eq!(engine.current_generation_id(), 1, "{what}: swapped anyway");
    }
    let m = engine.metrics();
    assert_eq!((m.swaps, m.swap_rejected), (0, 3));

    // The old generation serves on, bit-exact.
    let after = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
    assert_eq!(after.generation, 1);
    assert_eq!(oracle.results, after.results);

    // And the undamaged bundle still goes through afterwards.
    assert_eq!(engine.publish_artifacts(&good).unwrap(), 2);
    assert_eq!(engine.metrics().swaps, 1);
}

#[test]
fn stale_artifact_ids_are_refused() {
    let engine = deploy(&base_docs(), 0);
    let bundle = artifacts_for(&engine, &base_docs(), 1); // does not advance
    match engine.publish_artifacts(&bundle) {
        Err(PublishError::Stale { candidate, current }) => {
            assert_eq!((candidate, current), (1, 1));
        }
        other => panic!("expected Stale, got {other:?}"),
    }
    assert_eq!(engine.metrics().swap_rejected, 1);
}

#[test]
fn carry_over_keeps_identical_pages_and_drops_changed_ones() {
    let engine = deploy(&base_docs(), 256);
    let req = || QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
    let first = engine.search(req());
    assert!(!first.cache_hit);
    let second = engine.search(req());
    assert!(second.cache_hit, "same generation: the page is cached");
    assert_eq!(first.results, second.results);

    // Swap to an identical successor: the publish proves every byte of
    // the page unchanged, and the repeat's miss under the new tag
    // promotes the entry instead of recomputing — a warm hit under the
    // new generation, no swap cold-start.
    engine.republish().unwrap();
    let third = engine.search(req());
    assert!(third.cache_hit, "an identical swap must carry the page");
    assert_eq!(third.generation, 2);
    assert_eq!(first.results, third.results);
    assert!(engine.metrics().carried_over > 0);

    // Swap to a *different* corpus: carry validation fails (the corpus
    // — hence retrieval — changed), the entry drops, and the recompute
    // serves the new world. A carried page never hides a corpus change.
    let mut grown = base_docs();
    grown.extend(storm_docs(12..20));
    engine
        .publish_artifacts(&artifacts_for(&engine, &grown, 3))
        .unwrap();
    let apple = engine.search(req());
    assert!(!apple.cache_hit, "the pre-swap page was refused");
    assert_eq!(apple.generation, 3);
    assert!(
        engine.metrics().carry_skipped > 0,
        "changed corpus: cached pages must not carry"
    );
    let storm = engine.search(QueryRequest::new("storm", 5, AlgorithmKind::Baseline));
    assert!(!storm.cache_hit);
    assert_eq!(storm.results.len(), 5);
    // The new generation's pages cache under their own tag.
    assert!(
        engine
            .search(QueryRequest::new("storm", 5, AlgorithmKind::Baseline))
            .cache_hit
    );
}

#[test]
fn ingest_carries_surrogates_but_recomputes_pages() {
    let engine = deploy(&base_docs(), 256);
    let req = || QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
    let first = engine.search(req());
    assert!(!first.cache_hit && first.diversified);

    // An ingest changes the union statistics, so every cached page is
    // invalid (DPH scores move with df / num_docs / avg_doc_len) and
    // must recompute — but the sealed index and forward store are the
    // very same arcs, so the per-document snippet surrogates carry and
    // the recompute only pays retrieval + selection, not vectorization.
    engine.ingest(storm_docs(12..14)).unwrap();
    let after = engine.search(req());
    assert!(!after.cache_hit, "union stats changed: the page recomputes");
    assert_eq!(after.generation, 2);
    let m = engine.metrics();
    assert!(m.carried_over > 0, "surrogates carry across an ingest");
    assert!(m.carry_skipped > 0, "the cached page must not");
}

#[test]
fn merge_delta_carries_baseline_pages_via_the_union_contract() {
    let engine = deploy(&base_docs(), 256);
    engine.ingest(storm_docs(12..16)).unwrap();
    let req = || QueryRequest::new("storm", 4, AlgorithmKind::Baseline);
    let live = engine.search(req());
    assert!(!live.cache_hit);
    assert_eq!(live.results.len(), 4);

    // The union-statistics contract makes the pre-merge page bit-equal
    // to the post-merge one; the merge publish re-proves that per entry
    // and carries it, so sealing the delta does not cold-start traffic
    // whose pages did not change.
    engine.merge_delta().unwrap();
    let sealed = engine.search(req());
    assert!(sealed.cache_hit, "merge must carry the bit-identical page");
    assert_eq!(sealed.generation, engine.current_generation_id());
    assert_eq!(live.results, sealed.results);
}

#[test]
fn ingest_accumulates_and_merge_matches_a_from_scratch_build() {
    let engine = deploy(&base_docs(), 0);
    engine.ingest(storm_docs(12..14)).unwrap();
    engine.ingest(storm_docs(14..16)).unwrap();
    assert_eq!(engine.current_generation_id(), 3);
    let gen = engine.generation();
    assert_eq!(gen.delta().unwrap().len(), 4, "deltas accumulate");

    let live = engine.search(QueryRequest::new("storm", 4, AlgorithmKind::Baseline));
    assert_eq!(live.results.len(), 4, "delta docs searchable pre-merge");
    assert!(live
        .results
        .iter()
        .all(|r| r.url.starts_with("http://storm/")));

    engine.merge_delta().unwrap();
    assert!(engine.generation().delta().is_none());
    let mut full = base_docs();
    full.extend(storm_docs(12..16));
    assert_eq!(
        engine.index().to_bytes(),
        build_index(&full).to_bytes(),
        "merged index must be bit-identical to a from-scratch build"
    );
    // And the served page equals a fresh deployment's.
    let oracle = deploy(&full, 0);
    let merged = engine.search(QueryRequest::new("storm", 4, AlgorithmKind::Baseline));
    let want = oracle.search(QueryRequest::new("storm", 4, AlgorithmKind::Baseline));
    assert_eq!(merged.results, want.results);
}

#[test]
fn background_merger_seals_a_growing_delta() {
    let engine = deploy(&base_docs(), 0);
    let merger = engine.spawn_merger(3, Duration::from_millis(5));

    // Below threshold: the delta stays live.
    engine.ingest(storm_docs(12..14)).unwrap();
    std::thread::sleep(Duration::from_millis(40));
    assert!(
        engine.generation().delta().is_some(),
        "2 docs < threshold 3: no merge yet"
    );

    // Crossing the threshold: the merger seals it.
    engine.ingest(storm_docs(14..16)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.generation().delta().is_some() {
        assert!(Instant::now() < deadline, "merger never sealed the delta");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(merger); // stops and joins

    let mut full = base_docs();
    full.extend(storm_docs(12..16));
    assert_eq!(engine.index().to_bytes(), build_index(&full).to_bytes());
    let out = engine.search(QueryRequest::new("storm", 4, AlgorithmKind::Baseline));
    assert_eq!(out.results.len(), 4);
    assert!(engine.metrics().swaps >= 3, "two ingests + one merge");
}
