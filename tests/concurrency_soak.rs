//! Concurrency soak of the serving stack over the shared persistent
//! scoring executor: 16 client threads × 4 diversifiers hammer ONE engine
//! whose sharded retriever submits every scatter batch to one
//! [`ScoringExecutor`], for a fixed request budget.
//!
//! Asserted properties:
//! * **per-query determinism** — the same `(query, k, algorithm)` request
//!   returns the same page every single time, no matter how client
//!   threads and pool workers interleave (the result cache is disabled,
//!   so every page is recomputed through the executor);
//! * **no deadlock at `executor_threads = 1`** — 16 submitters contending
//!   for a one-thread pool still finish (the submitting thread helps
//!   drain its own batch), enforced by a watchdog;
//! * **clean teardown with in-flight work** — dropping a `WorkerPool` and
//!   its engine while requests are still queued neither hangs nor
//!   panics, and the shared executor keeps serving a second engine
//!   afterwards.
//!
//! The long sweep (a ~10× request budget) runs under
//! `--features property-tests`; the default budget keeps the suite
//! CI-sized.

use serpdiv::core::AlgorithmKind;
use serpdiv::index::{Document, IndexBuilder, InvertedIndex, Retriever, ShardedIndex};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{EngineConfig, QueryRequest, ScoringExecutor, SearchEngine, WorkerPool};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Requests per client thread (× 16 clients). The `property-tests` soak
/// is ~10× longer.
fn per_client_budget() -> usize {
    if cfg!(feature = "property-tests") {
        250
    } else {
        24
    }
}

const CLIENTS: usize = 16;
const DIVERSIFIERS: [AlgorithmKind; 4] = [
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

/// Fail loudly instead of hanging CI forever if the pool deadlocks.
fn with_watchdog(secs: u64, what: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("soak body panicked"),
        // Disconnected = the body panicked and dropped `tx` without
        // sending: join to re-raise the real failure, not a bogus
        // deadlock diagnosis.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{what}: not finished within {secs}s — deadlock?")
        }
    }
}

/// Two-interpretation "apple" corpus, large enough that every shard of a
/// 4-way split holds candidates for the diversified queries.
fn corpus() -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for i in 0..20u32 {
        b.add(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera",
        ));
    }
    for i in 20..40u32 {
        b.add(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe",
        ));
    }
    for i in 40..60u32 {
        b.add(Document::new(
            i,
            format!("http://misc/{i}"),
            "",
            "weather forecast rain cloud wind storm pressure front",
        ));
    }
    Arc::new(b.build())
}

fn model() -> Arc<SpecializationModel> {
    Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    )
}

/// One engine over a 4-shard retriever that pushes EVERY retrieval
/// through `executor` (threshold 0); result cache off so each page is
/// recomputed — determinism must come from the computation itself.
fn deploy(executor: &Arc<ScoringExecutor>) -> Arc<SearchEngine> {
    let index = corpus();
    let retriever: Arc<dyn Retriever> = Arc::new(
        ShardedIndex::build(index.clone(), 4)
            .with_executor(executor.clone())
            .with_parallel_threshold(0),
    );
    let config = EngineConfig {
        n_candidates: 30,
        cache_capacity: 0,
        index_shards: 4,
        executor_threads: executor.num_threads(),
        ..EngineConfig::default()
    };
    let compiled_config = config;
    let model = model();
    // Share the deployment artifacts through the explicit funnel, like a
    // real multi-engine deployment would.
    let store = {
        use serpdiv::core::SpecializationStore;
        use serpdiv::index::SearchEngine as DphEngine;
        let engine = DphEngine::new(&index);
        Arc::new(SpecializationStore::build(
            &model,
            &engine,
            config.params.k_spec_results,
            config.params.snippet_window,
        ))
    };
    let compiled = Arc::new(serpdiv::core::CompiledSpecStore::compile(&store));
    Arc::new(SearchEngine::with_retriever(
        index,
        retriever,
        model,
        store,
        compiled,
        compiled_config,
    ))
}

/// The soak schedule: client `t`'s `i`-th request. Mixes the ambiguous
/// query (diversified through all 4 algorithms), a passthrough query and
/// a no-hit query, at two k's.
fn request_for(t: usize, i: usize) -> QueryRequest {
    let algo = DIVERSIFIERS[(t + i) % DIVERSIFIERS.len()];
    match i % 5 {
        0..=2 => QueryRequest::new("apple", 6 + (i % 2) * 4, algo),
        3 => QueryRequest::new("weather storm", 8, algo),
        _ => QueryRequest::new("zeppelin", 5, algo),
    }
}

fn run_soak(executor_threads: usize) {
    let executor = Arc::new(ScoringExecutor::new(executor_threads));
    let engine = deploy(&executor);
    let budget = per_client_budget();

    // Expected pages, computed single-threaded before the storm.
    let expected: Vec<Vec<(Vec<u32>, String)>> = (0..CLIENTS)
        .map(|t| {
            (0..budget)
                .map(|i| {
                    let out = engine.search(request_for(t, i));
                    (
                        out.results.iter().map(|r| r.doc.0).collect(),
                        out.algorithm.to_string(),
                    )
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for (t, expect) in expected.iter().enumerate() {
            let engine = engine.clone();
            scope.spawn(move || {
                for (i, (docs, algo)) in expect.iter().enumerate() {
                    let out = engine.search(request_for(t, i));
                    assert_eq!(
                        &out.results.iter().map(|r| r.doc.0).collect::<Vec<_>>(),
                        docs,
                        "client {t} request {i}: page drifted under concurrency"
                    );
                    assert_eq!(&out.algorithm, algo, "client {t} request {i}");
                }
            });
        }
    });

    let m = engine.metrics();
    assert!(
        m.requests >= (CLIENTS * budget * 2) as u64,
        "all requests served: {m:?}"
    );
    assert_eq!(m.degraded, 0);
}

#[test]
fn sixteen_clients_four_diversifiers_are_deterministic() {
    with_watchdog(300, "16-client soak over a 2-thread executor", || {
        run_soak(2)
    });
}

#[test]
fn no_deadlock_with_a_single_executor_thread() {
    // The adversarial sizing: 16 submitters, one pool thread. Progress
    // relies on submitters helping drain their own batches.
    with_watchdog(300, "16-client soak over a 1-thread executor", || {
        run_soak(1)
    });
}

#[test]
fn engine_drops_cleanly_with_in_flight_work() {
    with_watchdog(120, "teardown with queued requests", || {
        let executor = Arc::new(ScoringExecutor::new(2));
        {
            let engine = deploy(&executor);
            let pool = WorkerPool::new(engine.clone(), 4);
            // Flood the queue and drop the reply receivers immediately —
            // clients that stopped waiting must not wedge teardown.
            for i in 0..64 {
                drop(pool.submit(request_for(i % CLIENTS, i)));
            }
            drop(pool); // drains + joins with work still queued
            drop(engine);
        }
        // The shared executor survives its first engine: a second engine
        // deploys onto the same pool and serves correctly.
        let engine = deploy(&executor);
        let out = engine.search(QueryRequest::new("apple", 6, AlgorithmKind::OptSelect));
        assert_eq!(out.results.len(), 6);
        assert!(out.diversified);
    });
}
