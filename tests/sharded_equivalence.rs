//! Scatter-gather correctness: `ShardedIndex` retrieval must be
//! **bit-identical** — same doc ids, same `f64` score bits, same order —
//! to the unsharded `SearchEngine` oracle, for every shard count.
//!
//! Three layers of evidence:
//! * a hand-built fixture with deliberate score ties straddling shard
//!   boundaries (the merge's tie-break is the part most likely to drift),
//! * an LCG-randomized corpus/query sweep over shard counts {1, 2, 4, 7},
//! * an end-to-end check that a sharded serving engine returns the same
//!   pages as an unsharded one for every diversification algorithm.

use serpdiv::index::{
    Document, IndexBuilder, InvertedIndex, Retriever, ScoredDoc, SearchEngine, ShardedIndex,
};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn assert_bit_identical(expect: &[ScoredDoc], got: &[ScoredDoc], context: &str) {
    assert_eq!(expect.len(), got.len(), "{context}: length");
    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
        assert_eq!(e.doc, g.doc, "{context}: doc at rank {i}");
        assert_eq!(
            e.score.to_bits(),
            g.score.to_bits(),
            "{context}: score bits at rank {i} ({} vs {})",
            e.score,
            g.score
        );
    }
}

/// Tiny deterministic generator (same discipline as the other suites: no
/// external rand dependency, reproducible failures).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() as usize) % items.len()]
    }
}

/// Fixture with exact duplicate documents (ties) placed so that every
/// shard count in the sweep splits at least one tie group across shards.
fn tie_heavy_index() -> Arc<InvertedIndex> {
    let texts = [
        "apple iphone smartphone chip battery",
        "apple fruit orchard sweet harvest",
        "apple pie cinnamon recipe baking",
        "storm wind rain forecast cloud",
    ];
    let mut b = IndexBuilder::new();
    // 28 docs: doc i and doc i+4 share the same text → identical length,
    // identical tf → identical DPH score for any query.
    for i in 0..28u32 {
        b.add(Document::new(
            i,
            format!("http://tie/{i}"),
            "",
            texts[i as usize % texts.len()],
        ));
    }
    Arc::new(b.build())
}

#[test]
fn tie_heavy_fixture_is_bit_identical_across_shard_counts() {
    let index = tie_heavy_index();
    let oracle = SearchEngine::new(&index);
    let queries = [
        "apple",
        "apple iphone",
        "apple pie recipe",
        "storm rain",
        "apple apple fruit", // duplicate query term (multiplicity weighting)
        "chip orchard cinnamon cloud",
    ];
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedIndex::build(index.clone(), shards);
        assert_eq!(sharded.num_shards(), shards);
        for query in queries {
            for k in [1, 2, 7, 13, 28, 100] {
                let expect = oracle.search(query, k);
                let got = sharded.retrieve(query, k);
                assert_bit_identical(&expect, &got, &format!("{query:?} k={k} shards={shards}"));
            }
        }
    }
}

#[test]
fn randomized_corpora_and_queries_are_bit_identical() {
    let vocab = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima",
    ];
    let mut rng = Lcg(0x5eed_cafe);
    for round in 0..5 {
        // Random corpus: 40–139 docs of 3–12 words from a 12-word
        // vocabulary — dense term overlap, frequent score ties.
        let num_docs = 40 + (rng.next() % 100) as u32;
        let mut b = IndexBuilder::new();
        for i in 0..num_docs {
            let len = 3 + (rng.next() % 10) as usize;
            let body = (0..len)
                .map(|_| *rng.pick(&vocab))
                .collect::<Vec<_>>()
                .join(" ");
            b.add(Document::new(i, format!("http://r/{i}"), "", body));
        }
        let index = Arc::new(b.build());
        let oracle = SearchEngine::new(&index);
        for &shards in &SHARD_COUNTS {
            let sharded = ShardedIndex::build(index.clone(), shards);
            for q in 0..8 {
                let qlen = 1 + (rng.next() % 4) as usize;
                let query = (0..qlen)
                    .map(|_| *rng.pick(&vocab))
                    .collect::<Vec<_>>()
                    .join(" ");
                let k = 1 + (rng.next() % 20) as usize;
                let expect = oracle.search(&query, k);
                let got = sharded.retrieve(&query, k);
                assert_bit_identical(
                    &expect,
                    &got,
                    &format!("round={round} q#{q} {query:?} k={k} shards={shards}"),
                );
            }
        }
    }
}

#[test]
fn retrieve_terms_matches_retrieve() {
    let index = tie_heavy_index();
    let sharded = ShardedIndex::build(index.clone(), 4);
    let terms = index.analyze_query("apple pie");
    assert_bit_identical(
        &sharded.retrieve("apple pie", 10),
        &sharded.retrieve_terms(&terms, 10),
        "terms vs raw query",
    );
}

#[test]
fn sharded_serving_pages_match_unsharded() {
    use serpdiv::core::AlgorithmKind;
    use serpdiv::mining::SpecializationModel;
    use serpdiv::serve::{EngineConfig, QueryRequest, SearchEngine as ServeEngine};

    let index = tie_heavy_index();
    let model = Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.5],["apple fruit",0.5]]}}}"#,
        )
        .unwrap(),
    );
    let config = EngineConfig {
        n_candidates: 20,
        cache_capacity: 0,
        ..EngineConfig::default()
    };
    let unsharded = ServeEngine::deploy(index.clone(), model.clone(), config);
    for shards in [2, 4, 7] {
        let sharded = ServeEngine::deploy(
            index.clone(),
            model.clone(),
            EngineConfig {
                index_shards: shards,
                ..config
            },
        );
        for algo in [
            AlgorithmKind::Baseline,
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            for query in ["apple", "storm rain", "zeppelin"] {
                let a = unsharded.search(QueryRequest::new(query, 6, algo));
                let b = sharded.search(QueryRequest::new(query, 6, algo));
                assert_eq!(a.results, b.results, "{query:?} {algo:?} shards={shards}");
                assert_eq!(a.algorithm, b.algorithm, "{query:?} {algo:?}");
                assert_eq!(a.diversified, b.diversified, "{query:?} {algo:?}");
            }
        }
    }
}
