//! Chaos soak: the 16-client serving soak under seeded fault plans.
//!
//! Three plans, one per dominant fault family, each driven by its own
//! LCG seed through the `serpdiv-chaos` failpoints:
//!
//! * **delay-heavy** — stage and executor delays under a per-request
//!   deadline budget, so requests degrade at stage edges;
//! * **kill-heavy** — injected panics in pool workers, executor tasks,
//!   and the select stage, all of which must be *contained* (the pool
//!   answers `error (internal)` and keeps serving);
//! * **corruption-heavy** — a live in-process worker fleet whose replies
//!   get their framing metadata corrupted, connections dropped, and
//!   requests silently stalled, which the router must convert into
//!   hedges, retries, and labeled shard-loss degradation.
//!
//! Asserted for every plan, under a watchdog (no hang):
//!
//! * every response echoes its request's query (no misattribution);
//! * every page is either **bit-identical** to the fault-free oracle for
//!   that request or carries a degraded/shed/internal label (no torn
//!   pages);
//! * the metrics leaf classes partition the request total exactly;
//! * after the plan disarms, the stack recovers to bit-exact fault-free
//!   serving (breakers close, links reconnect).
//!
//! Chaos arming is process-global, so the three tests serialize on one
//! static mutex.

use serpdiv::chaos::{self, FaultKind, FaultPlan};
use serpdiv::core::AlgorithmKind;
use serpdiv::fleet::{worker, FleetConfig, FleetRouter, HedgePolicy, DEFAULT_MAX_FRAME};
use serpdiv::index::{
    Document, IndexBuilder, InvertedIndex, Retriever, ScoringExecutor, ShardedIndex,
};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{
    EngineConfig, QueryRequest, SearchEngine, SearchResponse, SloConfig, WorkerPool,
    LABEL_INTERNAL, LABEL_SHED,
};
use std::collections::HashMap;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const PER_CLIENT: usize = 16;
const DIVERSIFIERS: [AlgorithmKind; 4] = [
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

/// Labels a faulted response is allowed to carry. Anything else that
/// drifts from the oracle is a torn page.
const DEGRADED_LABELS: [&str; 4] = [
    "DPH (degraded)",
    "DPH (degraded: shard loss)",
    LABEL_SHED,
    LABEL_INTERNAL,
];

/// Chaos arming is process-global: these tests must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fail loudly instead of hanging CI forever if anything deadlocks.
fn with_watchdog(secs: u64, what: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let body = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => body.join().expect("soak body panicked"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = body.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Leave no armed plan behind for the next test.
            chaos::disarm();
            panic!("{what}: not finished within {secs}s — hang under chaos?")
        }
    }
}

fn corpus() -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for i in 0..20u32 {
        b.add(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera",
        ));
    }
    for i in 20..40u32 {
        b.add(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe",
        ));
    }
    for i in 40..60u32 {
        b.add(Document::new(
            i,
            format!("http://misc/{i}"),
            "",
            "weather forecast rain cloud wind storm pressure front",
        ));
    }
    Arc::new(b.build())
}

fn model() -> Arc<SpecializationModel> {
    Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    )
}

/// Build an engine over `retriever` with the result cache off (every
/// page is recomputed, so oracle comparisons test the computation) and
/// the given per-request deadline.
fn build_engine(
    index: Arc<InvertedIndex>,
    retriever: Arc<dyn Retriever>,
    shards: usize,
    deadline_us: u64,
    slo: Option<SloConfig>,
) -> Arc<SearchEngine> {
    let config = EngineConfig {
        n_candidates: 30,
        cache_capacity: 0,
        index_shards: shards,
        deadline_us,
        slo,
        ..EngineConfig::default()
    };
    let m = model();
    let store = {
        use serpdiv::core::SpecializationStore;
        use serpdiv::index::SearchEngine as DphEngine;
        let engine = DphEngine::new(&index);
        Arc::new(SpecializationStore::build(
            &m,
            &engine,
            config.params.k_spec_results,
            config.params.snippet_window,
        ))
    };
    let compiled = Arc::new(serpdiv::core::CompiledSpecStore::compile(&store));
    Arc::new(SearchEngine::with_retriever(
        index, retriever, m, store, compiled, config,
    ))
}

/// The soak schedule: client `t`'s `i`-th request — the ambiguous query
/// through all four diversifiers, a passthrough query, and a no-hit
/// query, at two page sizes.
fn request_for(t: usize, i: usize) -> QueryRequest {
    let algo = DIVERSIFIERS[(t + i) % DIVERSIFIERS.len()];
    match i % 5 {
        0..=2 => QueryRequest::new("apple", 6 + (i % 2) * 4, algo),
        3 => QueryRequest::new("weather storm", 8, algo),
        _ => QueryRequest::new("zeppelin", 5, algo),
    }
}

type OracleKey = (String, usize, AlgorithmKind);
type OraclePage = (Vec<(u32, u64)>, String);

/// Fault-free pages for every distinct request in the schedule,
/// computed before any plan is armed. Must itself be degradation-free.
fn compute_oracle(engine: &SearchEngine) -> HashMap<OracleKey, OraclePage> {
    let mut oracle = HashMap::new();
    for t in 0..CLIENTS {
        for i in 0..PER_CLIENT {
            let req = request_for(t, i);
            let key = (req.query.clone(), req.k, req.algorithm);
            if oracle.contains_key(&key) {
                continue;
            }
            let out = engine.search(req);
            assert!(!out.degraded, "oracle computed under faults?");
            oracle.insert(key, (page_bits(&out), out.algorithm.to_string()));
        }
    }
    oracle
}

fn page_bits(out: &SearchResponse) -> Vec<(u32, u64)> {
    out.results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

/// The torn-page check. Returns `true` when the response is the exact
/// fault-free page, `false` when it was (legitimately, labeled)
/// degraded. Panics on a torn or misattributed page.
fn check_response(
    req: &QueryRequest,
    out: &SearchResponse,
    oracle: &HashMap<OracleKey, OraclePage>,
) -> bool {
    assert_eq!(out.query, req.query, "misattributed response");
    assert!(
        out.results.len() <= req.k,
        "oversized page for {}",
        req.query
    );
    let key = (req.query.clone(), req.k, req.algorithm);
    let (want_page, want_algo) = &oracle[&key];
    if !out.degraded && out.algorithm == want_algo.as_str() {
        assert_eq!(
            &page_bits(out),
            want_page,
            "torn page: bits drifted from the oracle without a degraded label ({})",
            out.algorithm,
        );
        return true;
    }
    assert!(
        out.degraded,
        "algorithm changed ({} vs {want_algo}) on an undegraded response",
        out.algorithm
    );
    assert!(
        DEGRADED_LABELS.contains(&out.algorithm),
        "degraded response with unknown label {:?}",
        out.algorithm
    );
    false
}

/// Drive the 16-client storm through `pool`, validating every response.
/// Returns (clean, degraded) counts.
fn storm(pool: &WorkerPool, oracle: &HashMap<OracleKey, OraclePage>) -> (u64, u64) {
    let counts = Mutex::new((0u64, 0u64));
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let counts = &counts;
            scope.spawn(move || {
                let schedule: Vec<QueryRequest> =
                    (0..PER_CLIENT).map(|i| request_for(t, i)).collect();
                let replies = pool.serve_batch(schedule.clone());
                assert_eq!(replies.len(), schedule.len(), "client {t}: lost replies");
                let mut clean = 0u64;
                let mut degraded = 0u64;
                for (req, out) in schedule.iter().zip(&replies) {
                    if check_response(req, out, oracle) {
                        clean += 1;
                    } else {
                        degraded += 1;
                    }
                }
                let mut c = counts.lock().unwrap();
                c.0 += clean;
                c.1 += degraded;
            });
        }
    });
    counts.into_inner().unwrap()
}

/// The metrics leaf classes must partition the request total exactly —
/// chaos may degrade requests, never lose or double-count them.
fn assert_partition(engine: &SearchEngine) {
    let m = engine.metrics();
    assert_eq!(
        m.requests,
        m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors,
        "leaf classes must partition the request total: {m:?}"
    );
}

/// After disarm, the stack must return to bit-exact fault-free serving.
/// Breakers and backoff windows need wall-clock time to expire, so poll:
/// one fully clean pass over every distinct request, within `timeout`.
fn assert_recovers(
    engine: &SearchEngine,
    oracle: &HashMap<OracleKey, OraclePage>,
    timeout: Duration,
) {
    assert!(!chaos::is_armed(), "recovery must run disarmed");
    let deadline = Instant::now() + timeout;
    loop {
        let mut all_clean = true;
        for ((query, k, algo), _) in oracle.iter() {
            let req = QueryRequest::new(query.clone(), *k, *algo);
            let out = engine.search(req.clone());
            if !check_response(&req, &out, oracle) {
                all_clean = false;
            }
        }
        if all_clean {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "stack did not recover to bit-exact serving within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn delay_heavy_plan_degrades_at_stage_edges_and_recovers() {
    let _s = serial();
    with_watchdog(300, "delay-heavy chaos soak", || {
        let index = corpus();
        let executor = Arc::new(ScoringExecutor::new(2));
        let retriever: Arc<dyn Retriever> = Arc::new(
            ShardedIndex::build(index.clone(), 4)
                .with_executor(executor)
                .with_parallel_threshold(0),
        );
        // 25 ms of budget against 8 ms injected stage delays: most
        // requests finish, a seeded minority exhausts mid-pipeline.
        // The SLO monitor holds the engine to 5 ms end-to-end: injected
        // 8 ms delays make served-but-slow requests burn budget too.
        let slo = SloConfig {
            target_us: 5_000,
            objective: 0.99,
            window: 64,
            burn_threshold: 2.0,
        };
        let engine = build_engine(index, retriever, 4, 25_000, Some(slo));
        let oracle = compute_oracle(&engine);
        let pool = WorkerPool::new(engine.clone(), 8);
        let baseline_requests = engine.metrics().requests;

        let plan = Arc::new(
            FaultPlan::new(0xA11C_E5EE)
                .with_rule("stage.*", 0.10, FaultKind::Delay(Duration::from_millis(8)))
                .with_rule(
                    "executor.task",
                    0.05,
                    FaultKind::Delay(Duration::from_millis(6)),
                ),
        );
        let (clean, degraded) = {
            let _armed = chaos::armed(plan.clone());
            storm(&pool, &oracle)
        };
        assert_eq!(clean + degraded, (CLIENTS * PER_CLIENT) as u64);
        assert!(plan.fired_total() > 0, "the plan never fired");
        assert!(clean > 0, "delays must not wipe out every request");
        let m = engine.metrics();
        assert_eq!(
            m.requests - baseline_requests,
            (CLIENTS * PER_CLIENT) as u64,
            "every request accounted for"
        );
        assert_partition(&engine);
        // The delay storm pushed the bad-request rate far past the 2×
        // burn threshold in at least one evaluated window.
        assert!(
            m.slo_burn_alerts >= 1,
            "the burn-rate alert must fire under the delay storm: {m:?}"
        );
        assert_recovers(&engine, &oracle, Duration::from_secs(10));
        // Fault-free traffic clears the latch: drive two full windows of
        // clean requests so at least one evaluates with zero bad samples.
        for _ in 0..2 * slo.window {
            let out = engine.search(QueryRequest::new("apple", 6, AlgorithmKind::OptSelect));
            assert!(!out.degraded, "recovered engine degraded a request");
        }
        let after = engine.metrics();
        assert!(
            !after.slo_alert_active,
            "a clean window must clear the alert latch: {after:?}"
        );
        assert!(
            after.slo_burn_alerts >= m.slo_burn_alerts,
            "rising-edge count never decreases"
        );
    });
}

#[test]
fn kill_heavy_plan_contains_every_panic_and_recovers() {
    let _s = serial();
    with_watchdog(300, "kill-heavy chaos soak", || {
        let index = corpus();
        let executor = Arc::new(ScoringExecutor::new(2));
        let retriever: Arc<dyn Retriever> = Arc::new(
            ShardedIndex::build(index.clone(), 4)
                .with_executor(executor)
                .with_parallel_threshold(0),
        );
        let engine = build_engine(index, retriever, 4, 0, None);
        let oracle = compute_oracle(&engine);
        let pool = WorkerPool::new(engine.clone(), 8);

        let plan = Arc::new(
            FaultPlan::new(0xDEAD_BEEF)
                .with_rule("pool.serve", 0.15, FaultKind::Panic)
                .with_rule("executor.task", 0.03, FaultKind::Panic)
                .with_rule("stage.select", 0.05, FaultKind::Panic),
        );
        let (clean, degraded) = {
            let _armed = chaos::armed(plan.clone());
            storm(&pool, &oracle)
        };
        assert_eq!(clean + degraded, (CLIENTS * PER_CLIENT) as u64);
        assert!(plan.fired_total() > 0, "the plan never fired");
        assert!(clean > 0, "panics must not take the pool down");
        let m = engine.metrics();
        assert!(
            m.internal_errors > 0,
            "contained panics must be counted: {m:?}"
        );
        assert_partition(&engine);
        // The pool's workers all survived: a full fault-free batch serves.
        assert_recovers(&engine, &oracle, Duration::from_secs(10));
        let replies = pool.serve_batch(vec![QueryRequest::new(
            "apple",
            6,
            AlgorithmKind::OptSelect,
        )]);
        assert!(!replies[0].degraded, "pool serves cleanly after the storm");
    });
}

fn fleet_socket(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("serpdiv-chaos-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn corruption_heavy_plan_keeps_fleet_pages_sound_and_recovers() {
    let _s = serial();
    with_watchdog(300, "corruption-heavy fleet chaos soak", || {
        let index = corpus();
        let sharded = ShardedIndex::build(index.clone(), 2);
        // In-process worker threads (same process, so the armed plan's
        // worker.* failpoints are visible to them).
        let mut sockets = Vec::new();
        for s in 0..2 {
            let path = fleet_socket(&format!("w{s}"));
            let bytes = sharded.export_shard(s);
            let listener = UnixListener::bind(&path).expect("bind fleet socket");
            std::thread::spawn(move || {
                let artifact =
                    serpdiv::index::ShardArtifact::from_bytes(&bytes).expect("valid artifact");
                worker::serve(&listener, &artifact, DEFAULT_MAX_FRAME);
            });
            sockets.push(path);
        }
        let router = Arc::new(FleetRouter::new(
            index.clone(),
            sockets,
            FleetConfig {
                shard_timeout: Duration::from_millis(150),
                backoff_base: Duration::from_millis(2),
                backoff_max: Duration::from_millis(20),
                hedge: HedgePolicy::After(Duration::from_millis(40)),
                breaker_threshold: 4,
                breaker_cooldown: Duration::from_millis(100),
                ..FleetConfig::default()
            },
        ));
        router
            .wait_ready(Duration::from_secs(5))
            .expect("fleet boots before chaos");
        let retriever: Arc<dyn Retriever> = router.clone();
        let engine = build_engine(index, retriever, 2, 0, None);
        let oracle = compute_oracle(&engine);
        let pool = WorkerPool::new(engine.clone(), 8);

        let plan = Arc::new(
            FaultPlan::new(0xC0DE_C0DE)
                .with_rule("worker.reply", 0.20, FaultKind::Corrupt)
                .with_rule("worker.serve", 0.10, FaultKind::Drop)
                .with_rule(
                    "worker.serve",
                    0.05,
                    FaultKind::Stall(Duration::from_millis(60)),
                )
                .with_rule("router.dispatch", 0.05, FaultKind::Drop),
        );
        let (clean, degraded) = {
            let _armed = chaos::armed(plan.clone());
            storm(&pool, &oracle)
        };
        assert_eq!(clean + degraded, (CLIENTS * PER_CLIENT) as u64);
        assert!(plan.fired_total() > 0, "the plan never fired");
        assert!(degraded > 0, "this plan is violent enough to degrade");
        assert!(clean > 0, "retries and hedges must save most exchanges");
        assert_partition(&engine);
        // Corrupted framing, dropped connections, and stalls all surface
        // in the router's failure telemetry.
        let fm = router.metrics();
        assert!(
            fm.shard_failures > 0 || fm.hedges > 0,
            "fleet chaos left no trace: {fm:?}"
        );
        // Disarmed, the breakers close and pages return to bit-exact.
        assert_recovers(&engine, &oracle, Duration::from_secs(15));
        assert_eq!(
            engine.metrics().requests,
            engine.metrics().cache_hits
                + engine.metrics().diversified
                + engine.metrics().passthrough
                + engine.metrics().shed
                + engine.metrics().internal_errors
        );
    });
}
