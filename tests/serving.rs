//! Integration test of the serving subsystem: synthetic corpus + query log
//! → mined model → deployed `serve::SearchEngine` → concurrent traffic
//! through the worker pool.

use serpdiv::core::AlgorithmKind;
use serpdiv::corpus::{Testbed, TestbedConfig};
use serpdiv::mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv::querylog::{split_sessions, FreqTable, LogConfig, QueryLogGenerator};
use serpdiv::serve::{EngineConfig, QueryRequest, SearchEngine, WorkerPool};
use std::sync::Arc;

/// Offline stack: small synthetic corpus, query log, mined model.
fn deploy() -> (Arc<SearchEngine>, Vec<String>) {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 4;
    cfg.docs_per_subtopic = 8;
    cfg.noise_docs = 80;
    let testbed = Testbed::generate(cfg);
    let generator = QueryLogGenerator::new(LogConfig::tiny(), &testbed.topics, &testbed.background);
    let (log, _) = generator.generate();
    let physical = split_sessions(&log);
    let qfg = QueryFlowGraph::build(&log, &physical);
    let logical = qfg.extract_logical_sessions(&log, &physical, 0.001);
    let shortcuts = ShortcutsModel::train(&log, &logical, 16);
    let freq = FreqTable::build(&log);
    let detector = AmbiguityDetector::new(&shortcuts, &freq, 10.0);
    let model = SpecializationModel::mine(&log, &detector);
    assert!(
        !model.is_empty(),
        "mining must detect some ambiguous queries"
    );

    let topic_queries: Vec<String> = testbed.topics.iter().map(|t| t.query.clone()).collect();
    let engine = SearchEngine::deploy(
        Arc::new(testbed.build_index()),
        Arc::new(model),
        EngineConfig {
            n_candidates: 50,
            ..EngineConfig::default()
        },
    );
    (Arc::new(engine), topic_queries)
}

#[test]
fn hundred_concurrent_queries_are_deterministic_and_cached() {
    let (engine, topics) = deploy();
    let pool = WorkerPool::new(engine.clone(), 8);
    assert_eq!(pool.num_workers(), 8);

    // 100 concurrent requests: 25 distinct (query, algorithm) pairs, each
    // repeated 4 times so the cache must serve repeats.
    let algorithms = [
        AlgorithmKind::OptSelect,
        AlgorithmKind::IaSelect,
        AlgorithmKind::XQuad,
        AlgorithmKind::Mmr,
        AlgorithmKind::Baseline,
    ];
    // The outer `repeat` loop emits each distinct key once per pass, so
    // the 4 repeats of a key are 19 requests apart in the schedule.
    let mut requests = Vec::new();
    for _repeat in 0..4 {
        for query in &topics {
            for &algo in &algorithms {
                requests.push(QueryRequest::new(query.clone(), 10, algo));
            }
        }
    }
    // 4 topics × 5 algorithms × 4 repeats = 80; pad to 100 with more
    // repeats of the first topic.
    while requests.len() < 100 {
        requests.push(QueryRequest::new(
            topics[0].clone(),
            10,
            AlgorithmKind::OptSelect,
        ));
    }
    assert_eq!(requests.len(), 100);

    let responses = pool.serve_batch(requests.clone());
    assert_eq!(responses.len(), 100);

    // Deterministic top-k: every response for the same (query, k,
    // algorithm) carries the same ranked doc ids — and matches a direct,
    // single-threaded call.
    for (req, resp) in requests.iter().zip(&responses) {
        let direct = engine.search(req.clone());
        assert_eq!(
            resp.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            direct.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            "query {:?} algo {:?}",
            req.query,
            req.algorithm,
        );
        assert_eq!(resp.diversified, direct.diversified);
    }

    // Repeated identical requests hit the result cache.
    let stats = engine.cache().expect("cache enabled").stats();
    assert!(
        stats.hits >= 75,
        "25 distinct keys over 100+ requests must mostly hit, got {stats:?}"
    );
    let metrics = engine.metrics();
    assert!(metrics.requests >= 100);
    assert_eq!(
        metrics.cache_hits + metrics.diversified + metrics.passthrough,
        metrics.requests
    );
}

#[test]
fn all_four_diversifiers_return_min_k_n_distinct_results() {
    let (engine, topics) = deploy();
    // Pick a topic query the model actually mined (ambiguous) so the
    // diversifiers run; fall back to the first topic otherwise.
    let query = topics
        .iter()
        .find(|q| engine.model().get(q).is_some())
        .expect("at least one topic mined")
        .clone();

    // n = the total candidate pool for this query.
    use serpdiv::index::SearchEngine as Retriever;
    let index = engine.index();
    let total_docs = index.stats().num_docs as usize;
    let n = Retriever::new(&index).search(&query, total_docs + 1).len();
    assert!(n > 0);

    for algo in [
        AlgorithmKind::OptSelect,
        AlgorithmKind::IaSelect,
        AlgorithmKind::XQuad,
        AlgorithmKind::Mmr,
    ] {
        for k in [1, 5, n, n + 50] {
            let out = engine.search(QueryRequest::new(query.clone(), k, algo));
            let expected = k.min(n).min(engine.config().n_candidates.max(k));
            assert_eq!(out.results.len(), expected, "{algo:?} k={k} n={n}");
            let mut ids: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), out.results.len(), "{algo:?} k={k} duplicates");
        }
    }
}

#[test]
fn per_stage_latency_accounting_is_populated() {
    let (engine, topics) = deploy();
    let query = topics
        .iter()
        .find(|q| engine.model().get(q).is_some())
        .expect("ambiguous topic")
        .clone();
    let out = engine.search(QueryRequest::new(
        query.clone(),
        10,
        AlgorithmKind::OptSelect,
    ));
    assert!(out.diversified);
    assert!(!out.cache_hit);
    assert!(out.timings.total_us > 0);
    assert!(
        out.timings.total_us
            >= out.timings.retrieve_us + out.timings.utility_us + out.timings.select_us,
        "total covers the stages: {:?}",
        out.timings
    );
    // The cached repeat reports only total time.
    let again = engine.search(QueryRequest::new(query, 10, AlgorithmKind::OptSelect));
    assert!(again.cache_hit);
    assert_eq!(again.timings.utility_us, 0);
    let m = engine.metrics();
    assert_eq!(m.cache_hits, 1);
    assert!(m.stage_sums.utility_us > 0);
}
