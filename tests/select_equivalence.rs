//! Equivalence suite for the lazy-greedy selection fast paths.
//!
//! PR 8 replaced the full-rescan greedy loops of IASelect, xQuAD and MMR
//! with stale-bound priority queues (`crates/core/src/lazy.rs`). The
//! optimization is *exact*, not approximate, so this suite pins it three
//! ways:
//!
//! 1. **Golden sequences** captured from the pre-optimization code on 12
//!    deterministic worlds — any tie-break drift against the shipped
//!    behaviour fails loudly, even if lazy and eager drift *together*.
//! 2. **Lazy vs eager oracle**: each diversifier's `select` must return
//!    index-for-index the same ranking as its verbatim `select_eager`
//!    copy of the old loop, across tie-heavy and smooth random worlds and
//!    a λ sweep including the degenerate 0 and 1 endpoints.
//! 3. An **extended randomized sweep** under `--features property-tests`.
//!
//! OptSelect was already single-pass (a bounded-heap scan, Algorithm 2),
//! so it has no lazy variant — the goldens still cover it to pin its
//! tie-breaking alongside the other three.

use serpdiv::core::{
    run_algorithm, AlgorithmKind, DiversifyInput, IaSelect, Mmr, PipelineParams, UtilityMatrix,
    XQuad,
};
use serpdiv::index::SparseVector;
use serpdiv::text::TermId;
use std::sync::Arc;

const ALGOS: [AlgorithmKind; 4] = [
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_vector(rng: &mut Lcg, max_nnz: u64, vocab: u64) -> SparseVector {
    let nnz = rng.below(max_nnz + 1);
    SparseVector::from_pairs((0..nnz).map(|_| {
        let t = rng.below(vocab) as u32;
        let w = rng.below(1000) as f32 / 50.0 + 0.01;
        (TermId(t), w)
    }))
}

/// One random selection world. `tie: true` quantizes relevance and
/// utilities onto tiny grids so equal scores are common and the
/// score → tie-key → index comparison chain is genuinely exercised.
fn world(rng: &mut Lcg, tie: bool, with_vecs: bool) -> (DiversifyInput, usize) {
    let n = 2 + rng.below(60) as usize;
    let m = 1 + rng.below(8) as usize;
    let k = 1 + rng.below(12) as usize;
    let weights: Vec<u64> = (0..m).map(|_| 1 + rng.below(9)).collect();
    let total: u64 = weights.iter().sum();
    let spec_probs: Vec<f64> = weights.iter().map(|&w| w as f64 / total as f64).collect();
    let relevance: Vec<f64> = (0..n)
        .map(|_| {
            if tie {
                rng.below(8) as f64 / 7.0
            } else {
                rng.below(1_000_000) as f64 / 999_999.0
            }
        })
        .collect();
    let values: Vec<f64> = (0..n * m)
        .map(|_| {
            if tie {
                rng.below(5) as f64 / 4.0
            } else {
                rng.below(1_000_000) as f64 / 999_999.0
            }
        })
        .collect();
    let mut input = DiversifyInput::new(
        spec_probs,
        relevance,
        UtilityMatrix::from_values(n, m, values),
    );
    if with_vecs {
        input = input.with_vectors(
            (0..n)
                .map(|_| Arc::new(random_vector(rng, 5, 12)))
                .collect(),
        );
    }
    (input, k)
}

/// Golden rankings captured from the pre-optimization (eager) selection
/// loops at the PR 8 baseline commit, seed `0x601d_5eed`, world `w` built
/// with `tie = w < 6`, `with_vecs = w % 2 == 0`. Inner order follows
/// [`ALGOS`]: OptSelect, IASelect, xQuAD, MMR.
#[allow(clippy::type_complexity)]
fn golden() -> Vec<(usize, Vec<Vec<usize>>)> {
    vec![
        (
            0,
            vec![
                vec![38, 6, 30, 22, 14, 19, 35],
                vec![12, 21, 3, 6, 14, 22, 30],
                vec![6, 38, 14, 30, 22, 3, 11],
                vec![6, 14, 3, 19, 35, 9, 27],
            ],
        ),
        (
            1,
            vec![
                vec![2, 26, 34, 42, 10, 18],
                vec![1, 39, 2, 10, 18, 26],
                vec![2, 26, 18, 34, 42, 10],
                vec![2, 34, 26, 10, 18, 42],
            ],
        ),
        (
            2,
            vec![vec![0, 1, 2], vec![1, 0, 2], vec![1, 2, 0], vec![1, 2, 0]],
        ),
        (
            3,
            vec![
                vec![6, 22, 27, 11, 3, 14, 19, 28, 12, 20, 4],
                vec![22, 18, 14, 6, 3, 11, 19, 27, 4, 12, 20],
                vec![22, 6, 14, 27, 3, 11, 19, 28, 4, 20, 12],
                vec![6, 14, 27, 22, 3, 19, 11, 28, 12, 4, 25],
            ],
        ),
        (4, vec![vec![2, 18], vec![24, 2], vec![2, 18], vec![2, 7]]),
        (
            5,
            vec![
                vec![26, 18, 7, 2, 10],
                vec![29, 0, 23, 2, 10],
                vec![26, 2, 18, 10, 7],
                vec![2, 26, 10, 18, 7],
            ],
        ),
        (
            6,
            vec![
                vec![12, 14, 15, 16],
                vec![6, 10, 24, 13],
                vec![12, 14, 16, 2],
                vec![12, 33, 15, 43],
            ],
        ),
        (
            7,
            vec![
                vec![1, 4, 19, 41, 35, 42, 30, 37, 40, 44, 12],
                vec![9, 38, 20, 4, 5, 31, 1, 10, 41, 35, 11],
                vec![4, 1, 42, 30, 41, 19, 35, 37, 40, 44, 12],
                vec![4, 30, 42, 1, 41, 0, 19, 40, 35, 44, 37],
            ],
        ),
        (
            8,
            vec![vec![28, 22], vec![12, 14], vec![28, 31], vec![28, 31]],
        ),
        (
            9,
            vec![
                vec![21, 13, 5, 20, 19, 28, 10, 27, 3],
                vec![4, 20, 29, 32, 33, 8, 37, 36, 22],
                vec![5, 21, 13, 10, 19, 20, 27, 28, 3],
                vec![21, 5, 10, 13, 24, 28, 3, 19, 20],
            ],
        ),
        (
            10,
            vec![
                vec![3, 27, 28, 21],
                vec![26, 6, 28, 10],
                vec![3, 27, 21, 4],
                vec![27, 3, 4, 9],
            ],
        ),
        (
            11,
            vec![
                vec![1, 2, 33, 40, 11, 20, 0],
                vec![8, 29, 19, 16, 36, 20, 9],
                vec![20, 1, 33, 11, 2, 40, 0],
                vec![1, 30, 40, 11, 33, 2, 0],
            ],
        ),
    ]
}

/// The lazy selection paths must reproduce the pre-optimization rankings
/// bit-for-bit (captured as golden index sequences — see [`golden`]).
#[test]
fn lazy_selection_matches_pre_optimization_goldens() {
    let mut rng = Lcg(0x601d_5eed);
    let golden = golden();
    for (w, (gw, expected)) in golden.iter().enumerate() {
        let (input, k) = world(&mut rng, w < 6, w % 2 == 0);
        assert_eq!(*gw, w, "golden table out of order");
        for (algo, want) in ALGOS.iter().zip(expected) {
            let (got, name) = run_algorithm(*algo, &input, k, PipelineParams::default());
            assert_eq!(&got, want, "world {w}: {name} diverged from golden");
        }
    }
}

/// Compare every lazy `select` against its verbatim eager oracle on one
/// world, across a λ sweep (xQuAD and MMR) including both endpoints.
fn assert_lazy_matches_eager(input: &DiversifyInput, k: usize, context: &str) {
    let ia = IaSelect::new();
    assert_eq!(
        serpdiv::core::Diversifier::select(&ia, input, k),
        ia.select_eager(input, k),
        "{context}: IASelect lazy vs eager"
    );
    for lambda in [0.0, 0.15, 0.5, 0.85, 1.0] {
        let xq = XQuad::with_lambda(lambda);
        assert_eq!(
            serpdiv::core::Diversifier::select(&xq, input, k),
            xq.select_eager(input, k),
            "{context}: xQuAD(λ={lambda}) lazy vs eager"
        );
        let mmr = Mmr::with_lambda(lambda);
        assert_eq!(
            serpdiv::core::Diversifier::select(&mmr, input, k),
            mmr.select_eager(input, k),
            "{context}: MMR(λ={lambda}) lazy vs eager"
        );
    }
}

/// Deterministic sweep: tie-heavy and smooth worlds, with and without
/// surrogate vectors (vectors flip MMR between cosine and profile
/// similarity).
#[test]
fn lazy_matches_eager_on_mixed_worlds() {
    let mut rng = Lcg(0x1a2b_3c4d);
    for w in 0..24usize {
        let (input, k) = world(&mut rng, w % 3 != 0, w % 2 == 1);
        assert_lazy_matches_eager(&input, k, &format!("world {w}"));
        // Degenerate k values on a few worlds.
        if w % 8 == 0 {
            assert_lazy_matches_eager(&input, 0, &format!("world {w} k=0"));
            assert_lazy_matches_eager(&input, 1_000, &format!("world {w} k=n+"));
        }
    }
}

/// All-ties stress: constant relevance and a constant utility matrix force
/// every round through the full tie-break chain.
#[test]
fn lazy_matches_eager_on_all_constant_world() {
    for (n, m) in [(1usize, 1usize), (7, 3), (40, 5)] {
        let input = DiversifyInput::new(
            vec![1.0 / m as f64; m],
            vec![0.5; n],
            UtilityMatrix::from_values(n, m, vec![0.25; n * m]),
        );
        assert_lazy_matches_eager(&input, n, &format!("constant {n}x{m}"));
    }
}

/// Extended randomized sweep, gated like the other property suites.
#[cfg(feature = "property-tests")]
mod randomized {
    use super::*;

    #[test]
    fn lazy_matches_eager_on_many_random_worlds() {
        let mut rng = Lcg(0x5eed_1a2e);
        for w in 0..300usize {
            let (input, k) = world(&mut rng, w % 2 == 0, w % 5 < 2);
            assert_lazy_matches_eager(&input, k, &format!("random world {w}"));
        }
    }
}
