//! Equivalence suite for the compiled forward-index surrogate path.
//!
//! The zero-string hot path (`ForwardIndex::surrogate`: incremental
//! `TermId`-stream window scan + direct TF-IDF emission) must be
//! **bit-identical** to the text oracle (`SnippetGenerator::snippet` +
//! `SparseVector::from_text`): same window choice, same `SparseVector`
//! entries and norm bits, and identical SERPs through every diversifier
//! whether the serving engine compiles a forward index or not. Fixtures
//! cover the degenerate shapes (empty body, title-only, no-query-term
//! fallback, tie-heavy windows); a randomized corpus sweep runs under
//! `--features property-tests`.

use serpdiv::core::AlgorithmKind;
use serpdiv::index::{Document, ForwardIndex, IndexBuilder, SnippetGenerator, SparseVector};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{EngineConfig, QueryRequest, SearchEngine};
use std::sync::Arc;

const ALGOS: [AlgorithmKind; 4] = [
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

/// Assert window choice and surrogate vector of `doc` agree between the
/// compiled path and the text oracle for `query`, for every window size
/// in `windows`.
fn assert_doc_equivalent(
    index: &serpdiv::index::InvertedIndex,
    forward: &ForwardIndex,
    doc: u32,
    query: &str,
    windows: &[usize],
    context: &str,
) {
    let doc = serpdiv::index::DocId(doc);
    let d = index.store().get(doc).expect("fixture doc");
    let qterms = index.analyze_query(query);
    for &w in windows {
        let snippets = SnippetGenerator::with_window(w);
        let naive_window = snippets.best_window_text(d, &qterms, index.vocab());
        let fast_window = forward.best_window(doc, &qterms, w);
        assert_eq!(
            fast_window, naive_window,
            "{context}: window diverged (doc {doc:?}, query {query:?}, w={w})"
        );
        let naive = SparseVector::from_text(&snippets.snippet(d, &qterms, index.vocab()), index);
        let fast = snippets.surrogate(forward, doc, &qterms);
        assert_eq!(
            fast, naive,
            "{context}: vector diverged (doc {doc:?}, query {query:?}, w={w})"
        );
        // PartialEq compares values; pin the norm down to the exact bits.
        assert_eq!(
            fast.norm().to_bits(),
            naive.norm().to_bits(),
            "{context}: norm bits diverged (doc {doc:?}, query {query:?}, w={w})"
        );
    }
}

/// Fixture docs exercising every degenerate shape at once.
fn fixture_index() -> serpdiv::index::InvertedIndex {
    let mut b = IndexBuilder::new();
    // 0: ordinary body with a query-term cluster away from the prefix.
    b.add(Document::new(
        0,
        "http://a",
        "Apple iPhone",
        format!(
            "{} apple iphone announcement today {}",
            "lorem ipsum dolor sit amet ".repeat(4),
            "consectetur adipiscing elit sed ".repeat(4)
        ),
    ));
    // 1: empty body (title-only surrogate).
    b.add(Document::new(1, "http://b", "Just A Title", ""));
    // 2: body with no title.
    b.add(Document::new(
        2,
        "http://c",
        "",
        "orchard harvest apple cider sweet vitamin",
    ));
    // 3: stopword-only body (every stream position is a sentinel).
    b.add(Document::new(
        3,
        "http://d",
        "Stop Words",
        "the of and is to in that it",
    ));
    // 4: tie-heavy — the query term repeats periodically so many windows
    // share the same (distinct, total) key and the earliest must win.
    b.add(Document::new(
        4,
        "http://e",
        "Ties",
        "apple pad pad ".repeat(12),
    ));
    // 5: both query terms everywhere (maximal ties on distinct coverage).
    b.add(Document::new(5, "http://f", "", "apple iphone ".repeat(15)));
    b.build()
}

#[test]
fn fixture_docs_match_oracle_bitwise() {
    let index = fixture_index();
    let forward = ForwardIndex::build(&index);
    let windows = [1, 3, 5, 30, 500];
    for query in [
        "apple",
        "apple iphone",
        "cider sweet",
        "zeppelin", // analyzed away (unknown term): prefix fallback
        "",         // empty query: prefix fallback
        "the of",   // stopwords only: analyzed to empty
    ] {
        for doc in 0..6u32 {
            assert_doc_equivalent(&index, &forward, doc, query, &windows, "fixture");
        }
    }
}

#[test]
fn title_only_and_empty_body_surrogates() {
    let index = fixture_index();
    let forward = ForwardIndex::build(&index);
    let doc = serpdiv::index::DocId(1);
    // The oracle returns the bare title for an empty body; the compiled
    // path must emit the same (title-only) vector, and the window (0,0).
    assert_eq!(
        forward.best_window(doc, &index.analyze_query("apple"), 30),
        (0, 0)
    );
    let compiled = forward.surrogate(doc, &index.analyze_query("apple"), 30);
    assert_eq!(compiled, SparseVector::from_text("Just A Title", &index));
    // Stopword-only body: all sentinels, surrogate reduces to the title.
    let stop = serpdiv::index::DocId(3);
    let compiled = forward.surrogate(stop, &index.analyze_query("apple"), 4);
    assert_eq!(
        compiled,
        SparseVector::from_text("Stop Words the of and is", &index)
    );
}

/// The serving layer must produce identical SERPs with and without the
/// compiled forward index, across all four diversifiers.
#[test]
fn serving_pages_identical_with_and_without_forward_index() {
    let mut b = IndexBuilder::new();
    for i in 0..6u32 {
        b.add(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera app store",
        ));
    }
    for i in 6..12u32 {
        b.add(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe cider tree",
        ));
    }
    let index = Arc::new(b.build());
    let model = Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    );
    let config = EngineConfig {
        n_candidates: 12,
        cache_capacity: 0, // always recompute, so both paths actually run
        ..EngineConfig::default()
    };
    let with = SearchEngine::deploy(index.clone(), model.clone(), config);
    let without = SearchEngine::deploy(
        index,
        model,
        EngineConfig {
            forward_index: false,
            ..config
        },
    );
    assert!(with.forward().is_some() && without.forward().is_none());
    for algo in ALGOS {
        for query in ["apple", "apple fruit", "unknown query"] {
            let a = with.search(QueryRequest::new(query, 5, algo));
            let b = without.search(QueryRequest::new(query, 5, algo));
            assert_eq!(a.results, b.results, "{query} {algo:?}");
            assert_eq!(a.algorithm, b.algorithm, "{query} {algo:?}");
            assert_eq!(a.diversified, b.diversified, "{query} {algo:?}");
        }
    }
}

/// Randomized corpus sweep (deterministic LCG, no external deps), gated
/// like the other property suites.
#[cfg(feature = "property-tests")]
mod randomized {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A word pool mixing content words, stopwords and a rare long token
    /// (dropped by the tokenizer), so streams get sentinels and holes.
    fn word(rng: &mut Lcg) -> &'static str {
        const WORDS: [&str; 24] = [
            "apple", "iphone", "fruit", "orchard", "review", "battery", "camera", "harvest",
            "cider", "juice", "recipe", "chip", "display", "store", "vitamin", "sweet", "the",
            "of", "and", "is", "to", "in", "running", "leopards",
        ];
        WORDS[rng.below(WORDS.len() as u64) as usize]
    }

    fn text(rng: &mut Lcg, len: usize) -> String {
        let mut out = String::new();
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(word(rng));
        }
        out
    }

    /// 25 random corpora: every (doc, query, window) triple picks the
    /// same window and emits the identical vector through both paths.
    #[test]
    fn random_corpora_match_oracle_bitwise() {
        let mut rng = Lcg(0x5eed_f0d1);
        for world in 0..25 {
            let num_docs = 1 + rng.below(12) as usize;
            let mut b = IndexBuilder::new();
            for i in 0..num_docs {
                let title_len = rng.below(4) as usize; // empties included
                let body_len = rng.below(120) as usize; // empties included
                let title = text(&mut rng, title_len);
                let body = text(&mut rng, body_len);
                b.add(Document::new(
                    i as u32,
                    format!("http://{world}/{i}"),
                    title,
                    body,
                ));
            }
            let index = b.build();
            let forward = ForwardIndex::build(&index);
            let windows = [1 + rng.below(6) as usize, 30, 200];
            for _ in 0..6 {
                let qlen = rng.below(4) as usize; // empty queries included
                let query = text(&mut rng, qlen);
                for doc in 0..num_docs as u32 {
                    assert_doc_equivalent(
                        &index,
                        &forward,
                        doc,
                        &query,
                        &windows,
                        &format!("world {world}"),
                    );
                }
            }
        }
    }
}
