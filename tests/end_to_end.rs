//! End-to-end integration tests spanning every crate of the workspace:
//! corpus generation → indexing → query-log simulation → mining →
//! diversification → evaluation.

use serpdiv::core::{AlgorithmKind, DiversificationPipeline, PipelineParams, UtilityParams};
use serpdiv::corpus::{Testbed, TestbedConfig};
use serpdiv::eval::{alpha_ndcg_at, ia_precision_at, ndcg_at};
use serpdiv::index::SearchEngine;
use serpdiv::mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv::querylog::{split_sessions, FreqTable, LogConfig, QueryLogGenerator};

struct World {
    testbed: Testbed,
    model: SpecializationModel,
}

fn build_world() -> World {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 6;
    cfg.docs_per_subtopic = 12;
    cfg.noise_docs = 150;
    let testbed = Testbed::generate(cfg);
    let generator = QueryLogGenerator::new(
        LogConfig::aol_like(6_000),
        &testbed.topics,
        &testbed.background,
    );
    let (log, _) = generator.generate();
    let physical = split_sessions(&log);
    let qfg = QueryFlowGraph::build(&log, &physical);
    let logical = qfg.extract_logical_sessions(&log, &physical, 0.001);
    let shortcuts = ShortcutsModel::train(&log, &logical, 16);
    let freq = FreqTable::build(&log);
    let detector = AmbiguityDetector::new(&shortcuts, &freq, 20.0);
    let model = SpecializationModel::mine(&log, &detector);
    World { testbed, model }
}

#[test]
fn full_stack_diversification_beats_baseline_on_alpha_ndcg() {
    let world = build_world();
    let index = world.testbed.build_index();
    let engine = SearchEngine::new(&index);
    let params = PipelineParams {
        k_spec_results: 15,
        utility: UtilityParams { threshold_c: 0.05 },
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &world.model, params);

    let (mut base_sum, mut opt_sum) = (0.0, 0.0);
    let mut diversified_topics = 0usize;
    for topic in &world.testbed.topics {
        let base = pipeline.diversify(&topic.query, 500, 100, AlgorithmKind::Baseline);
        let opt = pipeline.diversify(&topic.query, 500, 100, AlgorithmKind::OptSelect);
        if opt.diversified {
            diversified_topics += 1;
        }
        base_sum += alpha_ndcg_at(&base.docs, &world.testbed.qrels, topic.id, 0.5, 20);
        opt_sum += alpha_ndcg_at(&opt.docs, &world.testbed.qrels, topic.id, 0.5, 20);
    }
    assert!(
        diversified_topics >= 4,
        "mining should cover most of the 6 topics, got {diversified_topics}"
    );
    assert!(
        opt_sum >= base_sum * 0.98,
        "OptSelect ({opt_sum:.3}) must not fall below the baseline ({base_sum:.3})"
    );
}

#[test]
fn all_diversifiers_return_valid_serps_across_topics() {
    let world = build_world();
    let index = world.testbed.build_index();
    let engine = SearchEngine::new(&index);
    let pipeline = DiversificationPipeline::new(&engine, &world.model, PipelineParams::default());
    for topic in &world.testbed.topics {
        for algo in [
            AlgorithmKind::Baseline,
            AlgorithmKind::OptSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::IaSelect,
            AlgorithmKind::Mmr,
        ] {
            let out = pipeline.diversify(&topic.query, 300, 50, algo);
            assert!(!out.docs.is_empty(), "{algo:?} on topic {}", topic.id);
            let mut ids: Vec<u32> = out.docs.iter().map(|d| d.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), out.docs.len(), "{algo:?} duplicates");
        }
    }
}

#[test]
fn mined_probabilities_track_ground_truth_weights() {
    let world = build_world();
    let mut checked = 0usize;
    for topic in &world.testbed.topics {
        let Some(entry) = world.model.get(&topic.query) else {
            continue;
        };
        // For each mined specialization that is a true subtopic query, the
        // mined P(q'|q) should be within a loose band of the ground truth.
        for (spec, p) in &entry.specializations {
            if let Some(sub) = topic.subtopics.iter().find(|s| &s.query == spec) {
                assert!(
                    (p - sub.weight).abs() < 0.30,
                    "topic {} spec {spec}: mined {p:.2} vs truth {:.2}",
                    topic.id,
                    sub.weight
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 8,
        "too few mined specializations matched: {checked}"
    );
}

#[test]
fn evaluation_metrics_are_consistent_across_the_stack() {
    let world = build_world();
    let index = world.testbed.build_index();
    let engine = SearchEngine::new(&index);
    let topic = &world.testbed.topics[0];
    let ranking: Vec<_> = engine
        .search(&topic.query, 50)
        .into_iter()
        .map(|h| h.doc)
        .collect();
    let qrels = &world.testbed.qrels;
    for k in [5, 10, 20, 50] {
        let a = alpha_ndcg_at(&ranking, qrels, topic.id, 0.5, k);
        let i = ia_precision_at(&ranking, qrels, topic.id, k);
        let n = ndcg_at(&ranking, qrels, topic.id, k);
        assert!((0.0..=1.0).contains(&a));
        assert!((0.0..=1.0).contains(&i));
        assert!((0.0..=1.0).contains(&n));
    }
    // The retrieval baseline must find *something* relevant for its own
    // topic query.
    assert!(ndcg_at(&ranking, qrels, topic.id, 50) > 0.0);
}

#[test]
fn model_survives_serialization_roundtrip_and_still_diversifies() {
    let world = build_world();
    let json = world.model.to_json();
    let restored = SpecializationModel::from_json(&json).expect("roundtrip");
    assert_eq!(restored.len(), world.model.len());

    let index = world.testbed.build_index();
    let engine = SearchEngine::new(&index);
    let pipeline = DiversificationPipeline::new(&engine, &restored, PipelineParams::default());
    let topic = &world.testbed.topics[0];
    let out = pipeline.diversify(&topic.query, 200, 20, AlgorithmKind::OptSelect);
    assert_eq!(out.docs.len(), 20);
}

#[test]
fn threshold_c_one_degenerates_to_baseline() {
    // c = 1.0 zeroes every utility (Ũ ≤ 1): every diversifier must then
    // reproduce (a permutation-free prefix of) the relevance ranking.
    let world = build_world();
    let index = world.testbed.build_index();
    let engine = SearchEngine::new(&index);
    let params = PipelineParams {
        utility: UtilityParams { threshold_c: 1.1 },
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &world.model, params);
    let topic = &world.testbed.topics[0];
    let base = pipeline.diversify(&topic.query, 200, 10, AlgorithmKind::Baseline);
    let opt = pipeline.diversify(&topic.query, 200, 10, AlgorithmKind::OptSelect);
    let xquad = pipeline.diversify(&topic.query, 200, 10, AlgorithmKind::XQuad);
    assert_eq!(base.docs, opt.docs, "OptSelect at c>1 == baseline");
    assert_eq!(base.docs, xquad.docs, "xQuAD at c>1 == baseline");
}
