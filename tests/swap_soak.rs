//! Swap soak: the torn-request proof. 16 client threads hammer one
//! engine while a deployer thread repeatedly hot-swaps the whole serving
//! generation — index, forward index, compiled spec store — under
//! injected `swap.publish` / `swap.validate` delays and stalls that
//! stretch every publish across many in-flight requests.
//!
//! The invariant: **every response is internally consistent with exactly
//! one generation.** Each response carries the generation id its request
//! pinned; its page must be bit-identical to the page a single-threaded
//! oracle engine serves for that same generation. A request that read
//! the old index but the new spec store (or any other mix of epochs)
//! produces a page matching *no* generation's oracle and fails loudly.
//!
//! The oracle map is built by replaying the exact publish sequence on a
//! shadow engine, single-threaded, **before** the storm starts — same
//! artifacts, same decode path, same config.
//!
//! Also proven mid-soak: a corrupt artifact bundle is rejected with a
//! counted `swap_rejected` while the serving generation is untouched;
//! after the storm the metrics leaf classes partition the request total
//! (zero dropped requests) and the swap counters equal the deploy
//! schedule exactly.
//!
//! Two carry-over invariants ride on the same oracle discipline. Every
//! response — cache hits and carried entries included — must match its
//! claimed generation's oracle, so a carried entry serving a stale
//! generation's bytes fails `check` loudly. And the carry counters must
//! agree with what the swaps could prove: artifact swaps that change the
//! corpus change every page's statistics, so nothing may carry, while
//! NRT ingest shares the sealed artifacts, so surrogates carry and
//! result pages (whose union statistics moved) do not. The ingest oracle
//! additionally pins the union-statistics contract: every page holding
//! *unmerged delta documents* is bit-identical to a from-scratch sealed
//! build over the union corpus.
//!
//! Chaos arming is process-global, so the tests serialize on one mutex.

use serpdiv::chaos::{self, FaultKind, FaultPlan};
use serpdiv::core::AlgorithmKind;
use serpdiv::index::{Document, ForwardIndex, IndexBuilder, InvertedIndex};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{
    EngineConfig, GenerationArtifacts, PublishError, QueryRequest, SearchEngine, SearchResponse,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 16;
const MIN_ROUNDS: usize = 8;
/// Generations 1 (deploy) through GENERATIONS (last publish).
const GENERATIONS: u64 = 6;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fail loudly instead of hanging CI forever if anything deadlocks.
fn with_watchdog(secs: u64, what: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let body = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => body.join().expect("soak body panicked"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = body.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            chaos::disarm();
            panic!("{what}: not finished within {secs}s — hang under swap chaos?")
        }
    }
}

fn base_docs() -> Vec<Document> {
    let mut docs = Vec::new();
    for i in 0..8u32 {
        docs.push(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera",
        ));
    }
    for i in 8..16u32 {
        docs.push(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe",
        ));
    }
    docs
}

fn storm_docs(range: std::ops::Range<u32>) -> Vec<Document> {
    range
        .map(|i| {
            Document::new(
                i,
                format!("http://storm/{i}"),
                "storm warning",
                "weather storm warning wind forecast emergency shelter",
            )
        })
        .collect()
}

/// Generation `g`'s corpus: the base plus `2·(g−1)` storm documents, so
/// every successor changes both the "storm" page and (through the
/// collection statistics) the "apple" scores — a torn page cannot hide.
fn corpus_for(g: u64) -> Vec<Document> {
    let mut docs = base_docs();
    docs.extend(storm_docs(16..16 + 2 * (g as u32 - 1)));
    docs
}

fn build_index(docs: &[Document]) -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add(d.clone());
    }
    Arc::new(b.build())
}

fn model() -> Arc<SpecializationModel> {
    Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    )
}

fn config(cache_capacity: usize) -> EngineConfig {
    EngineConfig {
        n_candidates: 16,
        cache_capacity,
        ..EngineConfig::default()
    }
}

fn bundle_for(engine: &SearchEngine, g: u64) -> GenerationArtifacts {
    let index = build_index(&corpus_for(g));
    GenerationArtifacts {
        id: g,
        index: index.to_bytes(),
        forward: Some(ForwardIndex::build(&index).to_bytes()),
        compiled: engine.compiled().to_bytes(),
    }
}

/// The client request mix: the ambiguous query through all four
/// diversifiers at two page sizes, plus the generation-sensitive storm
/// query on the baseline path.
fn schedule() -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for algo in [
        AlgorithmKind::OptSelect,
        AlgorithmKind::IaSelect,
        AlgorithmKind::XQuad,
        AlgorithmKind::Mmr,
    ] {
        reqs.push(QueryRequest::new("apple", 6, algo));
        reqs.push(QueryRequest::new("apple", 10, algo));
    }
    reqs.push(QueryRequest::new("storm", 6, AlgorithmKind::Baseline));
    reqs.push(QueryRequest::new(
        "weather storm",
        8,
        AlgorithmKind::OptSelect,
    ));
    reqs
}

type PageKey = (String, usize, AlgorithmKind);
type Oracle = HashMap<u64, HashMap<PageKey, Vec<(u32, u64)>>>;

fn page_bits(out: &SearchResponse) -> Vec<(u32, u64)> {
    out.results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

/// Replay the publish sequence on a single-threaded shadow engine and
/// record every scheduled request's page per generation.
fn build_oracle(bundles: &[GenerationArtifacts]) -> Oracle {
    let shadow = SearchEngine::deploy(build_index(&corpus_for(1)), model(), config(0));
    let mut oracle = Oracle::new();
    let record = |engine: &SearchEngine, oracle: &mut Oracle, g: u64| {
        let mut pages = HashMap::new();
        for req in schedule() {
            let key = (req.query.clone(), req.k, req.algorithm);
            let out = engine.search(req);
            assert_eq!(out.generation, g, "shadow engine pinned the wrong epoch");
            assert!(!out.degraded, "oracle pages must be degradation-free");
            pages.insert(key, page_bits(&out));
        }
        oracle.insert(g, pages);
    };
    record(&shadow, &mut oracle, 1);
    for bundle in bundles {
        shadow.publish_artifacts(bundle).expect("shadow publish");
        record(&shadow, &mut oracle, bundle.id);
    }
    oracle
}

/// The soak core: validate one response against the oracle of the
/// generation it claims. Returns the generation id.
fn check(req: &QueryRequest, out: &SearchResponse, oracle: &Oracle) -> u64 {
    assert_eq!(out.query, req.query, "misattributed response");
    assert!(!out.degraded, "no pool, no deadline: nothing may degrade");
    let pages = oracle.get(&out.generation).unwrap_or_else(|| {
        panic!(
            "response claims unknown generation {} (published: 1..={GENERATIONS})",
            out.generation
        )
    });
    let key = (req.query.clone(), req.k, req.algorithm);
    assert_eq!(
        &page_bits(out),
        &pages[&key],
        "torn request: {}@k={} (algo {:?}) drifted from generation {}'s oracle",
        req.query,
        req.k,
        req.algorithm,
        out.generation,
    );
    out.generation
}

#[test]
fn sixteen_clients_race_repeated_swaps_without_a_single_torn_page() {
    let _s = serial();
    with_watchdog(300, "swap-under-chaos soak", || {
        let engine = Arc::new(SearchEngine::deploy(
            build_index(&corpus_for(1)),
            model(),
            config(512),
        ));
        let bundles: Vec<GenerationArtifacts> =
            (2..=GENERATIONS).map(|g| bundle_for(&engine, g)).collect();
        // A poisoned bundle the deployer ships mid-soak: valid id, dead
        // payload. It must bounce without touching the serving epoch.
        let mut poisoned = bundle_for(&engine, 4);
        poisoned.index[0] ^= 0xFF;

        let oracle = Arc::new(build_oracle(&bundles));
        let stop = Arc::new(AtomicBool::new(false));
        let observed = Mutex::new(HashSet::new());
        let served = Mutex::new(0u64);

        // Every publish crawls: a guaranteed 5 ms delay at the publish
        // failpoint plus seeded stalls at validation, so dozens of
        // requests overlap each swap window.
        let plan = Arc::new(
            FaultPlan::new(0x5AFE_5AFE)
                .with_rule(
                    "swap.publish",
                    1.0,
                    FaultKind::Delay(Duration::from_millis(5)),
                )
                .with_rule(
                    "swap.validate",
                    0.5,
                    FaultKind::Stall(Duration::from_millis(3)),
                ),
        );
        let _armed = chaos::armed(plan.clone());

        std::thread::scope(|scope| {
            // The deployer: one corrupt publish wedged between good ones.
            {
                let engine = engine.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    for bundle in &bundles {
                        if bundle.id == 4 {
                            match engine.publish_artifacts(&poisoned) {
                                Err(PublishError::Decode(_)) => {}
                                other => panic!("poisoned bundle accepted: {other:?}"),
                            }
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        engine.publish_artifacts(bundle).expect("good publish");
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for _ in 0..CLIENTS {
                let engine = engine.clone();
                let stop = stop.clone();
                let oracle = oracle.clone();
                let observed = &observed;
                let served = &served;
                scope.spawn(move || {
                    let mut local_gens = HashSet::new();
                    let mut count = 0u64;
                    let mut rounds = 0usize;
                    while rounds < MIN_ROUNDS || !stop.load(Ordering::Relaxed) {
                        for req in schedule() {
                            let out = engine.search(req.clone());
                            local_gens.insert(check(&req, &out, &oracle));
                            count += 1;
                        }
                        rounds += 1;
                    }
                    observed.lock().unwrap().extend(local_gens);
                    *served.lock().unwrap() += count;
                });
            }
        });

        assert!(plan.fired_total() > 0, "the swap failpoints never fired");
        assert!(
            plan.fired("swap.publish") >= GENERATIONS - 1,
            "every publish crosses the delayed failpoint"
        );

        // The storm saw the swaps happen: more than one epoch served, and
        // the engine ended on the last one.
        let observed = observed.into_inner().unwrap();
        assert!(
            observed.len() >= 2,
            "the soak never straddled a swap: {observed:?}"
        );
        assert!(observed.iter().all(|g| (1..=GENERATIONS).contains(g)));
        assert_eq!(engine.current_generation_id(), GENERATIONS);
        let last = engine.search(QueryRequest::new("storm", 6, AlgorithmKind::Baseline));
        assert_eq!(last.generation, GENERATIONS);

        // Zero dropped requests: every search answered and accounted for.
        let served = *served.lock().unwrap();
        let m = engine.metrics();
        assert!(served >= (CLIENTS * MIN_ROUNDS * schedule().len()) as u64);
        assert!(m.requests >= served, "metrics lost requests");
        assert_eq!(
            m.requests,
            m.cache_hits + m.diversified + m.passthrough + m.shed + m.internal_errors,
            "leaf classes must partition the request total: {m:?}"
        );
        // The deploy schedule, exactly: 5 good swaps, 1 poisoned reject.
        assert_eq!((m.swaps, m.swap_rejected), (GENERATIONS - 1, 1));
        assert_eq!(m.generation, GENERATIONS);
        // Carry-over staleness: every generation grows the corpus, which
        // moves every page's collection statistics and every surrogate's
        // idf table — no cached byte is provably unchanged, so the carry
        // pass must refuse everything. (That nothing stale *was* served
        // is what `check` proved on every single response above.)
        assert_eq!(
            m.carried_over, 0,
            "a corpus-changing swap must never carry a cache entry"
        );
    });
}

#[test]
fn nrt_ingest_races_clients_without_tearing() {
    let _s = serial();
    with_watchdog(300, "ingest-under-load soak", || {
        // Replay the ingest sequence on a shadow engine first: each step
        // adds two storm documents to the live delta.
        let steps: Vec<Vec<Document>> = (0..4u32)
            .map(|s| storm_docs(16 + 2 * s..16 + 2 * s + 2))
            .collect();
        let shadow = SearchEngine::deploy(build_index(&base_docs()), model(), config(0));
        let mut oracle = Oracle::new();
        let record = |engine: &SearchEngine, oracle: &mut Oracle, g: u64| {
            let mut pages = HashMap::new();
            for req in schedule() {
                let key = (req.query.clone(), req.k, req.algorithm);
                let out = engine.search(req);
                assert_eq!(out.generation, g);
                pages.insert(key, page_bits(&out));
            }
            oracle.insert(g, pages);
        };
        record(&shadow, &mut oracle, 1);
        let sealed_docs = base_docs().len() as u32;
        let mut accumulated = base_docs();
        let mut delta_pages = 0usize;
        for (i, step) in steps.iter().enumerate() {
            shadow.ingest(step.clone()).expect("shadow ingest");
            record(&shadow, &mut oracle, i as u64 + 2);
            // The union-statistics contract, held *inside the oracle*:
            // at every ingest instant, each page containing unmerged
            // delta documents is f64-bit-identical to a from-scratch
            // sealed build over the union corpus — delta docs rank with
            // union statistics, not delta-local ones.
            accumulated.extend(step.iter().cloned());
            let scratch = SearchEngine::deploy(build_index(&accumulated), model(), config(0));
            for req in schedule() {
                let key = (req.query.clone(), req.k, req.algorithm);
                let live_page = &oracle[&(i as u64 + 2)][&key];
                if live_page.iter().any(|(doc, _)| *doc >= sealed_docs) {
                    delta_pages += 1;
                    assert_eq!(
                        live_page,
                        &page_bits(&scratch.search(req)),
                        "unmerged-delta page {key:?} drifted from the from-scratch union build"
                    );
                }
            }
        }
        assert!(
            delta_pages >= steps.len() * 2,
            "the schedule must exercise pages holding unmerged delta docs"
        );
        let oracle = Arc::new(oracle);
        let last_gen = steps.len() as u64 + 1;

        let engine = Arc::new(SearchEngine::deploy(
            build_index(&base_docs()),
            model(),
            config(512),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    for step in &steps {
                        std::thread::sleep(Duration::from_millis(8));
                        engine.ingest(step.clone()).expect("live ingest");
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for _ in 0..8 {
                let engine = engine.clone();
                let stop = stop.clone();
                let oracle = oracle.clone();
                scope.spawn(move || {
                    let mut rounds = 0usize;
                    while rounds < MIN_ROUNDS || !stop.load(Ordering::Relaxed) {
                        for req in schedule() {
                            let out = engine.search(req.clone());
                            check(&req, &out, &oracle);
                        }
                        rounds += 1;
                    }
                });
            }
        });
        assert_eq!(engine.current_generation_id(), last_gen);
        assert_eq!(engine.generation().delta().unwrap().len(), 8);
        // Ingest publishes share the sealed index + forward store by Arc,
        // so surrogates carry into each new generation — and `check`
        // above proved every page those carried vectors fed was still
        // bit-exact for its generation. Cached result pages must NOT
        // carry: every ingest moves the union statistics under them.
        let m = engine.metrics();
        assert!(
            m.carried_over > 0,
            "surrogates must carry across NRT ingest publishes"
        );
        assert!(
            m.carry_skipped > 0,
            "result pages must not carry across a union-stats change"
        );
        // Sealing the accumulated delta yields the from-scratch index.
        engine.merge_delta().expect("merge");
        let mut full = base_docs();
        full.extend(storm_docs(16..24));
        assert_eq!(engine.index().to_bytes(), build_index(&full).to_bytes());
    });
}
