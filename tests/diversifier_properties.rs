//! Property-based invariants of the diversification algorithms, exercised
//! through the facade crate on randomly generated inputs.

use proptest::prelude::*;
use serpdiv::core::{Diversifier, DiversifyInput, IaSelect, Mmr, OptSelect, UtilityMatrix, XQuad};

/// Random well-formed DiversifyInput: n ∈ [1,60], m ∈ [0,6].
fn arb_input() -> impl Strategy<Value = DiversifyInput> {
    (1usize..60, 0usize..6).prop_flat_map(|(n, m)| {
        let values = prop::collection::vec(0.0f64..1.0, n * m);
        let relevance = prop::collection::vec(0.0f64..1.0, n);
        let probs = prop::collection::vec(0.1f64..1.0, m);
        (values, relevance, probs).prop_map(move |(values, relevance, probs)| {
            let total: f64 = probs.iter().sum();
            let probs: Vec<f64> = if m == 0 {
                Vec::new()
            } else {
                probs.iter().map(|p| p / total).collect()
            };
            DiversifyInput::new(probs, relevance, UtilityMatrix::from_values(n, m, values))
        })
    })
}

fn algorithms() -> Vec<Box<dyn Diversifier>> {
    vec![
        Box::new(OptSelect::new()),
        Box::new(OptSelect::with_lambda(0.0)),
        Box::new(OptSelect::with_lambda(1.0)),
        Box::new(IaSelect::new()),
        Box::new(XQuad::new()),
        Box::new(XQuad::with_lambda(1.0)),
        Box::new(Mmr::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm returns exactly min(k, n) distinct in-range indices.
    #[test]
    fn selections_are_well_formed(input in arb_input(), k in 0usize..80) {
        let n = input.num_candidates();
        for algo in algorithms() {
            let s = algo.select(&input, k);
            prop_assert_eq!(s.len(), k.min(n), "{} size", algo.name());
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), s.len(), "{} duplicates", algo.name());
            prop_assert!(s.iter().all(|&i| i < n), "{} out of range", algo.name());
        }
    }

    /// Determinism: two runs produce identical rankings.
    #[test]
    fn selections_are_deterministic(input in arb_input(), k in 1usize..40) {
        for algo in algorithms() {
            prop_assert_eq!(algo.select(&input, k), algo.select(&input, k));
        }
    }

    /// k = n returns a permutation of all candidates.
    #[test]
    fn full_k_is_a_permutation(input in arb_input()) {
        let n = input.num_candidates();
        for algo in algorithms() {
            let mut s = algo.select(&input, n);
            s.sort_unstable();
            let expected: Vec<usize> = (0..n).collect();
            prop_assert_eq!(&s, &expected, "{}", algo.name());
        }
    }

    /// OptSelect satisfies the MaxUtility coverage constraint whenever it
    /// is satisfiable: for every specialization j,
    /// |S ⋈ j| ≥ min(⌊k·P(j)⌋, coverage available).
    #[test]
    fn optselect_coverage_constraint(input in arb_input(), k in 1usize..40) {
        let n = input.num_candidates();
        let m = input.num_specializations();
        let k = k.min(n);
        // Constraint applies to the k most probable specializations.
        if m == 0 || m > k {
            return Ok(());
        }
        let s = OptSelect::with_lambda(1.0).select(&input, k);
        for j in 0..m {
            let quota = (k as f64 * input.spec_probs[j]).floor() as usize;
            let available = input.utilities.coverage(j);
            let got = s.iter().filter(|&&i| input.utilities.get(i, j) > 0.0).count();
            // The quota is enforceable only up to the number of available
            // useful docs, and competition among specializations can bind
            // when quotas sum close to k; assert the guaranteed floor.
            let floor = quota.min(available);
            prop_assert!(
                got >= floor.saturating_sub(
                    // Slack: docs can count for several specializations,
                    // and |S| = k caps the total. The Σ⌊k·P⌋ ≤ k bound
                    // guarantees no slack is needed when every doc serves
                    // a single specialization; multi-spec docs only help.
                    0
                ),
                "spec {j}: got {got} < floor {floor} (quota {quota}, avail {available})"
            );
        }
    }

    /// The Eq. 4 objective of IASelect's greedy solution is monotone in k.
    #[test]
    fn iaselect_objective_monotone(input in arb_input()) {
        let n = input.num_candidates();
        let algo = IaSelect::new();
        let full = algo.select(&input, n);
        let objective = |sol: &[usize]| -> f64 {
            (0..input.num_specializations())
                .map(|j| {
                    let unc: f64 = sol.iter().map(|&i| 1.0 - input.utilities.get(i, j)).product();
                    input.spec_probs[j] * (1.0 - unc)
                })
                .sum()
        };
        let mut prev = 0.0;
        for l in 1..=full.len() {
            let v = objective(&full[..l]);
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    /// xQuAD with λ = 0 ranks purely by relevance.
    #[test]
    fn xquad_lambda_zero_is_relevance(input in arb_input(), k in 1usize..30) {
        let s = XQuad::with_lambda(0.0).select(&input, k);
        for w in s.windows(2) {
            prop_assert!(
                input.relevance[w[0]] >= input.relevance[w[1]] - 1e-12,
                "not relevance-sorted"
            );
        }
    }
}
