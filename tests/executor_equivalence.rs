//! Persistent-executor correctness: retrieval through the shared
//! [`ScoringExecutor`] must be **bit-identical** — same doc ids, same
//! `f64` score bits, same order — to the unsharded oracle, to the
//! sequential scatter path, and to the pre-executor scoped-thread path,
//! for every tested `shard count × executor threads` combination.
//!
//! Three layers of evidence:
//! * a hand-built fixture with deliberate score ties straddling shard
//!   boundaries (the merge tie-break and the per-shard accumulation order
//!   are what could drift under a different scheduler),
//! * an LCG-randomized corpus/query sweep over shard counts {1, 2, 4, 7}
//!   × executor threads {1, 2, 4} (more rounds under
//!   `--features property-tests`),
//! * a check that one executor shared by several indexes (the intended
//!   deployment shape) still serves each bit-identically.

use serpdiv::index::{
    Document, IndexBuilder, InvertedIndex, Retriever, ScatterMode, ScoredDoc, ScoringExecutor,
    SearchEngine, ShardedIndex,
};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const EXECUTOR_THREADS: [usize; 3] = [1, 2, 4];

fn assert_bit_identical(expect: &[ScoredDoc], got: &[ScoredDoc], context: &str) {
    assert_eq!(expect.len(), got.len(), "{context}: length");
    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
        assert_eq!(e.doc, g.doc, "{context}: doc at rank {i}");
        assert_eq!(
            e.score.to_bits(),
            g.score.to_bits(),
            "{context}: score bits at rank {i} ({} vs {})",
            e.score,
            g.score
        );
    }
}

/// Tiny deterministic generator (same discipline as the other suites: no
/// external rand dependency, reproducible failures).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() as usize) % items.len()]
    }
}

/// Fixture with exact duplicate documents (ties) placed so that every
/// shard count in the sweep splits at least one tie group across shards.
fn tie_heavy_index() -> Arc<InvertedIndex> {
    let texts = [
        "apple iphone smartphone chip battery",
        "apple fruit orchard sweet harvest",
        "apple pie cinnamon recipe baking",
        "storm wind rain forecast cloud",
    ];
    let mut b = IndexBuilder::new();
    // 28 docs: doc i and doc i+4 share the same text → identical length,
    // identical tf → identical DPH score for any query.
    for i in 0..28u32 {
        b.add(Document::new(
            i,
            format!("http://tie/{i}"),
            "",
            texts[i as usize % texts.len()],
        ));
    }
    Arc::new(b.build())
}

/// A pooled index (threshold 0 so every query rides the executor) and a
/// scoped-thread index over the same partitioning, for oracle duty.
fn pooled_and_scoped(
    index: &Arc<InvertedIndex>,
    shards: usize,
    executor: &Arc<ScoringExecutor>,
) -> (ShardedIndex, ShardedIndex) {
    let pooled = ShardedIndex::build(index.clone(), shards)
        .with_executor(executor.clone())
        .with_parallel_threshold(0);
    let scoped = ShardedIndex::build(index.clone(), shards).with_scoring_workers(3);
    (pooled, scoped)
}

#[test]
fn tie_heavy_fixture_is_bit_identical_across_shards_and_threads() {
    let index = tie_heavy_index();
    let oracle = SearchEngine::new(&index);
    let queries = [
        "apple",
        "apple iphone",
        "apple pie recipe",
        "storm rain",
        "apple apple fruit", // duplicate query term (multiplicity weighting)
        "chip orchard cinnamon cloud",
    ];
    for &threads in &EXECUTOR_THREADS {
        let executor = Arc::new(ScoringExecutor::new(threads));
        assert_eq!(executor.num_threads(), threads);
        for &shards in &SHARD_COUNTS {
            let (pooled, scoped) = pooled_and_scoped(&index, shards, &executor);
            for query in queries {
                let terms = index.analyze_query(query);
                for k in [1, 2, 7, 13, 28, 100] {
                    let ctx = format!("{query:?} k={k} shards={shards} threads={threads}");
                    let expect = oracle.search(query, k);
                    // Auto resolves to the executor (threshold 0, pool
                    // attached) — the production path.
                    assert_bit_identical(&expect, &pooled.retrieve(query, k), &ctx);
                    // Forced modes: executor, sequential, and the
                    // pre-executor scoped-thread oracle.
                    assert_bit_identical(
                        &expect,
                        &pooled.retrieve_terms_with_mode(&terms, k, ScatterMode::Executor),
                        &format!("{ctx} [executor]"),
                    );
                    assert_bit_identical(
                        &expect,
                        &pooled.retrieve_terms_with_mode(&terms, k, ScatterMode::Sequential),
                        &format!("{ctx} [sequential]"),
                    );
                    assert_bit_identical(
                        &expect,
                        &scoped.retrieve_terms_with_mode(&terms, k, ScatterMode::ScopedThreads),
                        &format!("{ctx} [scoped]"),
                    );
                }
            }
        }
    }
}

#[test]
fn randomized_corpora_are_bit_identical_across_shards_and_threads() {
    let vocab = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima",
    ];
    let rounds = if cfg!(feature = "property-tests") {
        8
    } else {
        3
    };
    let mut rng = Lcg(0xe5ec_5eed);
    for round in 0..rounds {
        // Random corpus: 40–139 docs of 3–12 words from a 12-word
        // vocabulary — dense term overlap, frequent score ties.
        let num_docs = 40 + (rng.next() % 100) as u32;
        let mut b = IndexBuilder::new();
        for i in 0..num_docs {
            let len = 3 + (rng.next() % 10) as usize;
            let body = (0..len)
                .map(|_| *rng.pick(&vocab))
                .collect::<Vec<_>>()
                .join(" ");
            b.add(Document::new(i, format!("http://r/{i}"), "", body));
        }
        let index = Arc::new(b.build());
        let oracle = SearchEngine::new(&index);
        for &threads in &EXECUTOR_THREADS {
            let executor = Arc::new(ScoringExecutor::new(threads));
            for &shards in &SHARD_COUNTS {
                let (pooled, scoped) = pooled_and_scoped(&index, shards, &executor);
                for q in 0..6 {
                    let qlen = 1 + (rng.next() % 4) as usize;
                    let query = (0..qlen)
                        .map(|_| *rng.pick(&vocab))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let k = 1 + (rng.next() % 20) as usize;
                    let ctx = format!(
                        "round={round} q#{q} {query:?} k={k} shards={shards} threads={threads}"
                    );
                    let terms = index.analyze_query(&query);
                    let expect = oracle.search(&query, k);
                    assert_bit_identical(&expect, &pooled.retrieve(&query, k), &ctx);
                    assert_bit_identical(
                        &expect,
                        &scoped.retrieve_terms_with_mode(&terms, k, ScatterMode::ScopedThreads),
                        &format!("{ctx} [scoped]"),
                    );
                }
            }
        }
    }
}

#[test]
fn one_executor_shared_by_several_indexes_serves_each_correctly() {
    // The intended deployment shape: ONE pool, many sharded indexes (one
    // per corpus / shard layout) submitting into it.
    let executor = Arc::new(ScoringExecutor::new(2));
    let tie = tie_heavy_index();
    let mut b = IndexBuilder::new();
    for i in 0..12u32 {
        b.add(Document::new(
            i,
            format!("http://other/{i}"),
            "",
            if i % 2 == 0 {
                "golf hotel india juliet"
            } else {
                "alpha bravo charlie golf"
            },
        ));
    }
    let other = Arc::new(b.build());
    let tie_pooled = ShardedIndex::build(tie.clone(), 4)
        .with_executor(executor.clone())
        .with_parallel_threshold(0);
    let other_pooled = ShardedIndex::build(other.clone(), 3)
        .with_executor(executor.clone())
        .with_parallel_threshold(0);
    let tie_oracle = SearchEngine::new(&tie);
    let other_oracle = SearchEngine::new(&other);
    // Interleave queries so the two indexes' batches mingle in the queue.
    for _ in 0..10 {
        assert_bit_identical(
            &tie_oracle.search("apple pie", 9),
            &tie_pooled.retrieve("apple pie", 9),
            "tie corpus through shared pool",
        );
        assert_bit_identical(
            &other_oracle.search("golf charlie", 7),
            &other_pooled.retrieve("golf charlie", 7),
            "other corpus through shared pool",
        );
    }
}

#[test]
fn executor_mode_requires_an_attached_pool() {
    let index = tie_heavy_index();
    let bare = ShardedIndex::build(index.clone(), 2);
    let terms = index.analyze_query("apple");
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        bare.retrieve_terms_with_mode(&terms, 5, ScatterMode::Executor)
    }));
    assert!(
        err.is_err(),
        "forcing the executor path without a pool must panic"
    );
}
