//! Union-statistics equivalence: the NRT bit-identity contract.
//!
//! A [`DeltaRetriever`] page must be `f64`-bit-identical to a from-scratch
//! build over the union (sealed + delta) corpus **at every instant** —
//! before the background merge, across every sealed retrieval layer the
//! serving engine deploys (plain index, sharded scatter-gather, executor-
//! backed scatter), across multi-step ingests, and for query terms the
//! sealed vocabulary has never seen. The sealed side scores under the
//! delta's union [`StatsOverlay`]; the delta side scores its local
//! postings with the same overlay in the same ascending-union-term order;
//! the k-way gather shares [`top_k`]'s total order — so every score bit
//! matches the union oracle's.

use serpdiv::core::AlgorithmKind;
use serpdiv::index::{
    DeltaIndex, DeltaRetriever, Document, IndexBuilder, InvertedIndex, Retriever, ScoredDoc,
    ScoringExecutor, ShardedIndex,
};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{EngineConfig, QueryRequest, SearchEngine};
use std::sync::Arc;

/// Base corpus: three topics over a shared vocabulary so delta ingests
/// shift document frequencies the sealed documents' scores depend on.
fn base_docs() -> Vec<Document> {
    let bodies = [
        "apple iphone smartphone review chip battery display camera",
        "apple fruit orchard sweet harvest vitamin juice recipe",
        "weather forecast rain cloud wind storm pressure front",
    ];
    (0..18u32)
        .map(|i| {
            Document::new(
                i,
                format!("http://base/{i}"),
                format!("base {i}"),
                bodies[(i % 3) as usize],
            )
        })
        .collect()
}

/// Delta documents reuse the base vocabulary *and* introduce terms the
/// sealed collection has never seen ("quantum", "qubit").
fn delta_docs(range: std::ops::Range<u32>) -> Vec<Document> {
    range
        .map(|i| {
            let body = if i % 2 == 0 {
                "apple iphone chip storm warning battery"
            } else {
                "quantum computer qubit entanglement apple silicon"
            };
            Document::new(i, format!("http://delta/{i}"), format!("delta {i}"), body)
        })
        .collect()
}

fn build_index(docs: &[Document]) -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add(d.clone());
    }
    Arc::new(b.build())
}

fn assert_bits(got: &[ScoredDoc], expect: &[ScoredDoc], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length");
    for (g, e) in got.iter().zip(expect) {
        assert_eq!(g.doc, e.doc, "{what}");
        assert_eq!(
            g.score.to_bits(),
            e.score.to_bits(),
            "{what}: {} vs {}",
            g.score,
            e.score
        );
    }
}

const QUERIES: [&str; 6] = [
    "apple",
    "apple iphone",
    "weather storm",
    "quantum",
    "quantum apple",
    "orchard sweet harvest",
];

/// Every sealed retrieval layer the engine deploys, under a delta, against
/// the union oracle — including sealed-only and delta-only queries.
#[test]
fn delta_retriever_matches_union_oracle_over_every_sealed_layer() {
    let base_corpus = base_docs();
    let fresh = delta_docs(18..24);
    let base = build_index(&base_corpus);
    let delta = Arc::new(DeltaIndex::build(&base, fresh.clone()));

    let mut all = base_corpus.clone();
    all.extend(fresh.clone());
    let oracle = build_index(&all);

    let executor = Arc::new(ScoringExecutor::new(2));
    let sealed_layers: Vec<(String, Arc<dyn Retriever>)> = vec![
        ("plain".into(), base.clone() as Arc<dyn Retriever>),
        (
            "shards=2".into(),
            Arc::new(ShardedIndex::build(base.clone(), 2)),
        ),
        (
            "shards=4".into(),
            Arc::new(ShardedIndex::build(base.clone(), 4)),
        ),
        (
            "shards=7".into(),
            Arc::new(ShardedIndex::build(base.clone(), 7)),
        ),
        (
            "shards=4+executor".into(),
            Arc::new(
                ShardedIndex::build(base.clone(), 4)
                    .with_executor(executor)
                    .with_parallel_threshold(0),
            ),
        ),
    ];
    for (label, sealed) in sealed_layers {
        let retriever = DeltaRetriever::new(sealed, base.clone(), delta.clone());
        for query in QUERIES {
            for k in [1, 3, 10, 50] {
                let got = retriever.retrieve(query, k);
                let expect = Retriever::retrieve(oracle.as_ref(), query, k);
                assert_bits(&got, &expect, &format!("{label} {query} k={k}"));
            }
        }
    }
}

/// The contract holds at every step of a growing delta, and stays held by
/// the merged index afterwards.
#[test]
fn multi_step_ingest_matches_union_oracle_at_every_instant() {
    let base_corpus = base_docs();
    let base = build_index(&base_corpus);
    let mut union_corpus = base_corpus.clone();
    for step in 0..4u32 {
        let fresh: Vec<Document> = delta_docs(18 + 2 * step..18 + 2 * step + 2);
        union_corpus.extend(fresh.clone());
        // The engine accumulates the delta: every step re-builds it over
        // all documents ingested since the seal, exactly like
        // `SearchEngine::ingest`.
        let pending: Vec<Document> = union_corpus[base_corpus.len()..].to_vec();
        let delta = Arc::new(DeltaIndex::build(&base, pending));
        let retriever = DeltaRetriever::new(
            base.clone() as Arc<dyn Retriever>,
            base.clone(),
            delta.clone(),
        );
        let oracle = build_index(&union_corpus);
        for query in QUERIES {
            let got = retriever.retrieve(query, 30);
            let expect = Retriever::retrieve(oracle.as_ref(), query, 30);
            assert_bits(&got, &expect, &format!("step {step}: {query}"));
        }
        // The overlay *is* the merged statistics: collection stats down
        // to the f64 bits of the average document length.
        let merged = serpdiv::index::merge_sealed(&base, &delta);
        let (u, m) = (delta.union_stats(), merged.stats());
        assert_eq!(u.num_docs, m.num_docs, "step {step}");
        assert_eq!(u.num_tokens, m.num_tokens, "step {step}");
        assert_eq!(
            u.avg_doc_len.to_bits(),
            m.avg_doc_len.to_bits(),
            "step {step}"
        );
    }
}

/// Regression (silently-dropped terms): a query term that exists only in
/// the delta must contribute its df — both alone and mixed with sealed
/// terms, where its presence changes nothing for sealed docs (its
/// postings live only in the delta) but must still rank the delta docs
/// exactly as the union build does.
#[test]
fn delta_only_query_terms_are_not_dropped() {
    let base_corpus = base_docs();
    let fresh = delta_docs(18..22);
    let base = build_index(&base_corpus);
    let delta = Arc::new(DeltaIndex::build(&base, fresh.clone()));
    let retriever = DeltaRetriever::new(base.clone() as Arc<dyn Retriever>, base.clone(), delta);

    // Sanity: the sealed vocabulary does not know the term.
    assert!(base.analyze_query("qubit").is_empty());

    let mut all = base_corpus;
    all.extend(fresh);
    let oracle = build_index(&all);
    for query in ["qubit", "quantum computer", "entanglement apple"] {
        let got = retriever.retrieve(query, 20);
        assert!(!got.is_empty(), "{query}: must match delta documents");
        let expect = Retriever::retrieve(oracle.as_ref(), query, 20);
        assert_bits(&got, &expect, query);
    }
}

/// Engine-level: a live engine's pre-merge Baseline pages (retrieval +
/// materialization, no diversification downstream of the contract) are
/// bit-identical to a from-scratch deployment over the union corpus.
#[test]
fn engine_premerge_baseline_pages_match_from_scratch_deployment() {
    let model = Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap(),
    );
    let config = EngineConfig {
        n_candidates: 16,
        cache_capacity: 0,
        ..EngineConfig::default()
    };
    let engine = SearchEngine::deploy(build_index(&base_docs()), model.clone(), config);

    let mut union_corpus = base_docs();
    for step in 0..3u32 {
        let fresh = delta_docs(18 + 2 * step..18 + 2 * step + 2);
        union_corpus.extend(fresh.clone());
        engine.ingest(fresh).expect("ingest");
        let oracle = SearchEngine::deploy(build_index(&union_corpus), model.clone(), config);
        for query in QUERIES {
            for k in [3, 8] {
                let req = QueryRequest::new(query, k, AlgorithmKind::Baseline);
                let got = engine.search(req.clone());
                let expect = oracle.search(req);
                assert_eq!(
                    got.results.len(),
                    expect.results.len(),
                    "step {step} {query} k={k}"
                );
                for (g, e) in got.results.iter().zip(expect.results.iter()) {
                    assert_eq!(g.doc, e.doc, "step {step} {query} k={k}");
                    assert_eq!(
                        g.score.to_bits(),
                        e.score.to_bits(),
                        "step {step} {query} k={k}"
                    );
                    assert_eq!(g.url, e.url, "step {step} {query} k={k}");
                }
            }
        }
    }
    // And after the merge the very same pages keep serving.
    engine.merge_delta().expect("merge");
    let oracle = SearchEngine::deploy(build_index(&union_corpus), model, config);
    for query in QUERIES {
        let req = QueryRequest::new(query, 8, AlgorithmKind::Baseline);
        let got = engine.search(req.clone());
        let expect = oracle.search(req);
        assert_eq!(got.results, expect.results, "post-merge {query}");
    }
}
