//! Equivalence suite for the compiled utility fast path.
//!
//! The inverted utility index (`serpdiv::core::CompiledSpecStore`) must be
//! numerically indistinguishable from the naive Definition-2 oracle
//! (`UtilityMatrix::compute`): every matrix cell within 1e-9, and the
//! final rankings of all four diversifiers identical, both on a
//! deterministic end-to-end fixture and (under `--features
//! property-tests`) on randomized surrogate worlds.

use serpdiv::core::{
    assemble_input, assemble_input_naive, run_algorithm, AlgorithmKind, CompiledSpecStore,
    DiversifyInput, PipelineParams, SpecializationStore, UtilityMatrix, UtilityParams,
};
use serpdiv::index::{Document, ForwardIndex, IndexBuilder, SearchEngine, SparseVector};
use serpdiv::mining::SpecializationModel;
use serpdiv::text::TermId;

const ALGOS: [AlgorithmKind; 4] = [
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

fn assert_matrices_match(fast: &UtilityMatrix, naive: &UtilityMatrix, context: &str) {
    assert_eq!(fast.num_candidates(), naive.num_candidates(), "{context}");
    assert_eq!(
        fast.num_specializations(),
        naive.num_specializations(),
        "{context}"
    );
    for i in 0..fast.num_candidates() {
        for j in 0..fast.num_specializations() {
            let (f, n) = (fast.get(i, j), naive.get(i, j));
            assert!(
                (f - n).abs() < 1e-9,
                "{context}: cell ({i},{j}) fast {f} vs naive {n}"
            );
        }
    }
    for j in 0..fast.num_specializations() {
        assert_eq!(
            fast.coverage(j),
            naive.coverage(j),
            "{context}: coverage {j}"
        );
    }
}

fn assert_rankings_match(fast: &DiversifyInput, naive: &DiversifyInput, context: &str) {
    let params = PipelineParams::default();
    for algo in ALGOS {
        let (a, name) = run_algorithm(algo, fast, 10, params);
        let (b, _) = run_algorithm(algo, naive, 10, params);
        assert_eq!(a, b, "{context}: {name} ranking diverged");
    }
}

/// Deterministic end-to-end fixture: the two-interpretation "apple" world
/// driven through the real pipeline stages, fast path vs naive oracle.
#[test]
fn end_to_end_fixture_fast_path_matches_naive() {
    let mut b = IndexBuilder::new();
    for i in 0..6u32 {
        b.add(Document::new(
            i,
            format!("http://tech/{i}"),
            "apple iphone",
            "apple iphone smartphone review chip battery display camera app store",
        ));
    }
    for i in 6..12u32 {
        b.add(Document::new(
            i,
            format!("http://food/{i}"),
            "apple fruit",
            "apple fruit orchard sweet harvest vitamin juice recipe cider tree",
        ));
    }
    for i in 12..16u32 {
        b.add(Document::new(
            i,
            format!("http://misc/{i}"),
            "",
            "weather forecast rain cloud wind storm",
        ));
    }
    let index = b.build();
    let model = SpecializationModel::from_json(
        r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
    )
    .unwrap();
    let engine = SearchEngine::new(&index);

    for threshold_c in [0.0, 0.3] {
        let params = PipelineParams {
            utility: UtilityParams { threshold_c },
            ..PipelineParams::default()
        };
        let store = SpecializationStore::build(
            &model,
            &engine,
            params.k_spec_results,
            params.snippet_window,
        );
        let compiled = CompiledSpecStore::compile(&store);
        let entry = model.get("apple").unwrap();
        let baseline = engine.search("apple", 12);
        assert!(!baseline.is_empty());

        let forward = ForwardIndex::build(&index);
        let fast = assemble_input(
            &index, &forward, entry, &compiled, &params, "apple", &baseline,
        );
        let naive = assemble_input_naive(&index, entry, &store, &params, "apple", &baseline);
        let ctx = format!("c={threshold_c}");
        assert_matrices_match(&fast.utilities, &naive.utilities, &ctx);
        assert_eq!(fast.relevance, naive.relevance, "{ctx}");
        assert_eq!(fast.spec_probs, naive.spec_probs, "{ctx}");
        assert_rankings_match(&fast, &naive, &ctx);
        // The fixture must actually exercise positive utilities.
        assert!(
            (0..fast.utilities.num_specializations()).any(|j| fast.utilities.coverage(j) > 0),
            "{ctx}: degenerate fixture"
        );
    }
}

/// Synthetic-vector fixture exercising edge shapes the end-to-end world
/// cannot hit: zero candidates, empty surrogate lists, unknown specs.
#[test]
fn synthetic_fixture_including_edge_shapes() {
    let v =
        |pairs: &[(u32, f32)]| SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)));
    let lists: Vec<(String, Vec<SparseVector>)> = vec![
        (
            "a".into(),
            vec![v(&[(1, 2.0), (3, 1.0)]), v(&[(1, 1.0), (4, 2.5)])],
        ),
        ("b".into(), vec![v(&[(2, 1.0)]), SparseVector::default()]),
        ("empty".into(), Vec::new()),
    ];
    let compiled = CompiledSpecStore::build(
        lists
            .iter()
            .map(|(name, list)| (name.as_str(), list.iter())),
    );
    let candidates = [
        v(&[(1, 1.0), (2, 2.0)]),
        v(&[(3, 4.0), (4, 0.1)]),
        SparseVector::default(),
        v(&[(99, 1.0)]),
    ];
    // Column order includes an unknown spec and repeats are allowed.
    let names = ["b", "ghost", "a", "empty"];
    let params = UtilityParams::default();
    let scorer = compiled.scorer(names.iter().copied());
    let fast = scorer.matrix(&candidates, params);
    let naive_lists: Vec<Vec<SparseVector>> = names
        .iter()
        .map(|n| {
            lists
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, l)| l.clone())
                .unwrap_or_default()
        })
        .collect();
    let naive = UtilityMatrix::compute(&candidates, &naive_lists, params);
    assert_matrices_match(&fast, &naive, "synthetic fixture");
}

/// The MaxScore-style whole-row prune (PR 8) must be invisible: the
/// pruned entry points agree **bit-for-bit** with their verbatim unpruned
/// oracles across a threshold sweep — including `threshold_c = 0`, where
/// the prune gate must never fire, and aggressive thresholds where most
/// rows prune.
#[test]
fn pruned_scoring_matches_unpruned_oracle() {
    let v =
        |pairs: &[(u32, f32)]| SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)));
    let lists: Vec<(String, Vec<SparseVector>)> = vec![
        (
            "a".into(),
            vec![v(&[(1, 2.0), (3, 1.0)]), v(&[(1, 1.0), (4, 2.5)])],
        ),
        ("b".into(), vec![v(&[(2, 1.0)]), SparseVector::default()]),
        ("c".into(), vec![v(&[(7, 0.2)]), v(&[(8, 0.1), (1, 0.05)])]),
        ("empty".into(), Vec::new()),
    ];
    let compiled = CompiledSpecStore::build(
        lists
            .iter()
            .map(|(name, list)| (name.as_str(), list.iter())),
    );
    let candidates = [
        v(&[(1, 1.0), (2, 2.0)]),
        v(&[(3, 4.0), (4, 0.1)]),
        v(&[(7, 3.0), (8, 3.0)]), // weak specs only: prunes at high c
        SparseVector::default(),
        v(&[(99, 1.0)]),
    ];
    let names = ["b", "ghost", "a", "empty", "c", "a"];
    let scorer = compiled.scorer(names.iter().copied());
    for threshold_c in [0.0, 0.01, 0.05, 0.3, 0.6, 0.9, 1.0] {
        let params = UtilityParams { threshold_c };
        for (ci, cand) in candidates.iter().enumerate() {
            let mut pruned = vec![f64::NAN; names.len()];
            let mut oracle = vec![f64::NAN; names.len()];
            scorer.score_into(cand, &mut pruned, params);
            scorer.score_into_unpruned(cand, &mut oracle, params);
            assert_eq!(
                pruned, oracle,
                "score_into c={threshold_c} candidate {ci} diverged"
            );
            assert_eq!(
                compiled.score_all(cand, params),
                compiled.score_all_unpruned(cand, params),
                "score_all c={threshold_c} candidate {ci} diverged"
            );
        }
        // The aggressive end of the sweep must actually prune something,
        // or the fast path is untested.
        if threshold_c >= 0.9 {
            let mut out = vec![0.0; names.len()];
            scorer.score_into(&candidates[2], &mut out, params);
            assert!(
                out.iter().all(|&u| u == 0.0),
                "weak candidate should fully prune at c={threshold_c}"
            );
        }
    }
}

/// Randomized equivalence sweep (deterministic LCG, no external deps),
/// gated like the other property suites.
#[cfg(feature = "property-tests")]
mod randomized {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_vector(rng: &mut Lcg, max_nnz: u64, vocab: u64) -> SparseVector {
        let nnz = rng.below(max_nnz + 1);
        SparseVector::from_pairs((0..nnz).map(|_| {
            let t = rng.below(vocab) as u32;
            let w = rng.below(1000) as f32 / 50.0 + 0.01;
            (TermId(t), w)
        }))
    }

    /// 40 random worlds: utilities within 1e-9 of the oracle and
    /// identical rankings across all four diversifiers.
    #[test]
    fn random_worlds_match_oracle_and_rankings() {
        let mut rng = Lcg(0x5eed_cafe);
        for world in 0..40 {
            let n = 1 + rng.below(40) as usize;
            let m = 1 + rng.below(6) as usize;
            let lists: Vec<(String, Vec<SparseVector>)> = (0..m)
                .map(|s| {
                    let r = rng.below(21) as usize; // 0..=20, empties included
                    (
                        format!("s{s}"),
                        (0..r).map(|_| random_vector(&mut rng, 30, 120)).collect(),
                    )
                })
                .collect();
            let candidates: Vec<SparseVector> =
                (0..n).map(|_| random_vector(&mut rng, 30, 120)).collect();
            let compiled = CompiledSpecStore::build(
                lists
                    .iter()
                    .map(|(name, list)| (name.as_str(), list.iter())),
            );
            let params = UtilityParams::default();
            let names: Vec<&str> = lists.iter().map(|(n, _)| n.as_str()).collect();
            let scorer = compiled.scorer(names.iter().copied());
            let fast = scorer.matrix(&candidates, params);
            let naive_lists: Vec<Vec<SparseVector>> =
                lists.iter().map(|(_, l)| l.clone()).collect();
            let naive = UtilityMatrix::compute(&candidates, &naive_lists, params);
            let ctx = format!("world {world} (n={n}, m={m})");
            assert_matrices_match(&fast, &naive, &ctx);

            // Same selection behaviour on both matrices.
            let probs: Vec<f64> = {
                let raw: Vec<f64> = (0..m).map(|_| 1.0 + rng.below(9) as f64).collect();
                let total: f64 = raw.iter().sum();
                raw.into_iter().map(|p| p / total).collect()
            };
            let relevance: Vec<f64> = (0..n).map(|_| rng.below(1000) as f64 / 999.0).collect();
            let fast_in = DiversifyInput::new(probs.clone(), relevance.clone(), fast);
            let naive_in = DiversifyInput::new(probs, relevance, naive);
            assert_rankings_match(&fast_in, &naive_in, &ctx);
        }
    }

    /// Random worlds: the pruned scorer entry points are bit-identical to
    /// their unpruned oracles for every threshold in a sweep.
    #[test]
    fn random_pruned_scoring_bitwise_equals_unpruned() {
        let mut rng = Lcg(0x0bad_5c0e);
        for world in 0..25 {
            let m = 1 + rng.below(7) as usize;
            let lists: Vec<(String, Vec<SparseVector>)> = (0..m)
                .map(|s| {
                    let r = rng.below(16) as usize;
                    (
                        format!("s{s}"),
                        (0..r).map(|_| random_vector(&mut rng, 20, 90)).collect(),
                    )
                })
                .collect();
            let compiled = CompiledSpecStore::build(
                lists
                    .iter()
                    .map(|(name, list)| (name.as_str(), list.iter())),
            );
            let names: Vec<&str> = lists.iter().map(|(n, _)| n.as_str()).collect();
            let scorer = compiled.scorer(names.iter().copied());
            let candidates: Vec<SparseVector> = (0..1 + rng.below(30))
                .map(|_| random_vector(&mut rng, 20, 90))
                .collect();
            for threshold_c in [0.0, 0.02, 0.1, 0.4, 0.8] {
                let params = UtilityParams { threshold_c };
                for (ci, cand) in candidates.iter().enumerate() {
                    let mut pruned = vec![f64::NAN; m];
                    let mut oracle = vec![f64::NAN; m];
                    scorer.score_into(cand, &mut pruned, params);
                    scorer.score_into_unpruned(cand, &mut oracle, params);
                    assert_eq!(
                        pruned, oracle,
                        "world {world} c={threshold_c} candidate {ci}: score_into"
                    );
                    assert_eq!(
                        compiled.score_all(cand, params),
                        compiled.score_all_unpruned(cand, params),
                        "world {world} c={threshold_c} candidate {ci}: score_all"
                    );
                }
            }
        }
    }

    /// Parallel row computation is bit-identical to sequential on random
    /// inputs.
    #[test]
    fn random_parallel_rows_bitwise_equal() {
        let mut rng = Lcg(0xfeed_f00d);
        let lists: Vec<(String, Vec<SparseVector>)> = (0..5)
            .map(|s| {
                (
                    format!("s{s}"),
                    (0..15).map(|_| random_vector(&mut rng, 25, 200)).collect(),
                )
            })
            .collect();
        let candidates: Vec<SparseVector> =
            (0..333).map(|_| random_vector(&mut rng, 25, 200)).collect();
        let compiled = CompiledSpecStore::build(
            lists
                .iter()
                .map(|(name, list)| (name.as_str(), list.iter())),
        );
        let names: Vec<&str> = lists.iter().map(|(n, _)| n.as_str()).collect();
        let scorer = compiled.scorer(names.iter().copied());
        let params = UtilityParams { threshold_c: 0.05 };
        let seq = scorer.matrix(&candidates, params);
        for threads in [2, 5, 16] {
            assert_eq!(
                seq,
                scorer.matrix_parallel(&candidates, params, threads),
                "threads={threads}"
            );
        }
    }
}
